"""Incremental linting: content-addressed cache and git-scoped runs.

A full lint run re-parses and re-checks every file; on a tree this size
that is fast but not free, and pre-commit hooks want *instant*.  Two
accelerators compose here:

- **Result cache** (``--cache``, on by default): per-file findings keyed
  by content hash, plus the whole-tree results of the project passes
  keyed by a tree fingerprint.  A file whose content hash matches the
  cache contributes its stored findings without its rules re-running;
  when every file matches, even the interprocedural passes are replayed
  from the cache.  The cache context embeds :data:`LINT_VERSION`, the
  active rule ids, and the hash of the trace-registry module (R3's
  findings in *other* files depend on it), so a rule change or registry
  edit invalidates everything at once.
- **Git scoping** (``--changed``): per-module rules run only on files
  git reports as dirty (plus ``--base REF`` diffs), falling back to the
  cache for the rest.  The project passes always see the full tree —
  interprocedural findings can appear in files you didn't touch.

Both are accelerators only: results for files that *ran* are exact, and
the CI full run (no cache, no scoping) stays authoritative.  Cache
entries are written only for files whose rules actually ran or whose
cached entry was reused — a scoped run can never poison the cache with
"no findings" for a file it skipped.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import Project
from repro.lint.framework import (
    LINT_VERSION,
    Finding,
    ProjectRule,
    Rule,
    SourceModule,
    path_endswith,
)
from repro.lint.runner import (
    LintReport,
    _load_modules,
    _waiver_problems,
    check_module,
    default_project_rules,
    default_rules,
)
from repro.lint.rules_trace import TRACE_MODULE_SUFFIX, TraceKindRule

CACHE_VERSION = 1

#: Default cache file, relative to the lint root.
DEFAULT_CACHE_NAME = ".repro-lint-cache.json"


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _context_fingerprint(
    rules: Sequence[Rule],
    project_rules: Sequence[ProjectRule],
    modules: Sequence[SourceModule],
) -> str:
    parts: List[str] = [f"lint-version={LINT_VERSION}"]
    parts.extend(f"rule={rule.id}" for rule in rules)
    parts.extend(f"project-rule={rule.id}" for rule in project_rules)
    for module in modules:
        if path_endswith(module.relpath, TRACE_MODULE_SUFFIX):
            parts.append(f"trace-registry={_sha(module.source)}")
    return _sha("\n".join(sorted(parts)))


def _tree_fingerprint(shas: Dict[str, str], context: str) -> str:
    parts = [context] + [f"{rel}={sha}" for rel, sha in sorted(shas.items())]
    return _sha("\n".join(parts))


def load_cache(path: Path) -> Optional[Dict[str, Any]]:
    """The parsed cache, or None when absent/corrupt/incompatible."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("version") != CACHE_VERSION:
        return None
    return data


def save_cache(path: Path, data: Dict[str, Any]) -> None:
    """Atomic write (temp + rename) so interrupted runs never corrupt."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(
        json.dumps(data, indent=1, sort_keys=True), encoding="utf-8"
    )
    os.replace(tmp, path)


def git_changed_files(root: Path, base: Optional[str] = None) -> Set[str]:
    """Paths (relative to *root*) git reports as changed.

    Combines ``git status --porcelain`` (uncommitted work) with
    ``git diff --name-only <base>`` when *base* is given (committed work
    on a PR branch).  Raises :class:`RuntimeError` when git is
    unavailable or *root* is not inside a work tree.
    """

    def run(args: List[str]) -> str:
        result = subprocess.run(
            ["git"] + args,
            cwd=root,
            capture_output=True,
            text=True,
            timeout=30,
        )
        if result.returncode != 0:
            raise RuntimeError(
                f"git {' '.join(args)} failed: {result.stderr.strip()}"
            )
        return result.stdout

    try:
        toplevel = Path(run(["rev-parse", "--show-toplevel"]).strip())
    except (OSError, RuntimeError) as error:
        raise RuntimeError(f"--changed needs a git work tree: {error}")

    repo_relative: Set[str] = set()
    for line in run(["status", "--porcelain"]).splitlines():
        if len(line) < 4:
            continue
        entry = line[3:]
        if " -> " in entry:  # rename: old -> new; lint the new path
            entry = entry.split(" -> ", 1)[1]
        repo_relative.add(entry.strip().strip('"'))
    if base is not None:
        for line in run(["diff", "--name-only", base]).splitlines():
            if line.strip():
                repo_relative.add(line.strip())

    changed: Set[str] = set()
    for entry in repo_relative:
        absolute = toplevel / entry
        try:
            changed.add(
                os.path.relpath(absolute, root).replace(os.sep, "/")
            )
        except ValueError:  # different drive on Windows
            changed.add(str(absolute).replace(os.sep, "/"))
    return changed


def _findings_json(findings: Sequence[Finding]) -> List[Dict[str, Any]]:
    return [finding.as_dict() for finding in findings]


def _findings_load(items: Any) -> List[Finding]:
    return [Finding.from_dict(item) for item in items or []]


def run_lint_incremental(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    rules: Optional[List[Rule]] = None,
    project_rules: Optional[List[ProjectRule]] = None,
    cache_path: Optional[Path] = None,
    changed: Optional[Set[str]] = None,
) -> Tuple[LintReport, Dict[str, Any]]:
    """Cache-aware lint run; returns (report, stats).

    Stats: ``{"ran": N, "cached": N, "skipped": N, "project_cached": bool}``.
    With *cache_path* None and *changed* None this is equivalent to
    :func:`~repro.lint.runner.run_lint`.
    """
    modules, problems = _load_modules(paths, root)
    active_rules = rules if rules is not None else default_rules(None)
    active_project = (
        project_rules if project_rules is not None else default_project_rules()
    )
    for rule in active_rules:
        if isinstance(rule, TraceKindRule):
            for module in modules:
                if path_endswith(module.relpath, TRACE_MODULE_SUFFIX):
                    rule.learn_registry(module)
                    break

    context = _context_fingerprint(active_rules, active_project, modules)
    shas = {module.relpath: _sha(module.source) for module in modules}
    tree_print = _tree_fingerprint(shas, context)

    cache = load_cache(cache_path) if cache_path is not None else None
    if cache is not None and cache.get("context") != context:
        cache = None  # rule set / trace registry changed: full re-run
    cached_files: Dict[str, Any] = (cache or {}).get("files", {})

    report = LintReport(
        files_scanned=len(modules),
        rules=list(active_rules) + list(active_project),
    )
    report.problems.extend(problems)
    known_rules = [rule.id for rule in report.rules]

    stats = {"ran": 0, "cached": 0, "skipped": 0, "project_cached": False}
    new_files: Dict[str, Any] = {}
    by_relpath = {module.relpath: module for module in modules}

    for module in modules:
        report.problems.extend(_waiver_problems(module, known_rules))
        relpath = module.relpath
        entry = cached_files.get(relpath)
        if entry is not None and entry.get("sha") == shas[relpath]:
            report.findings.extend(_findings_load(entry.get("findings")))
            report.waived.extend(_findings_load(entry.get("waived")))
            new_files[relpath] = entry
            stats["cached"] += 1
            continue
        if changed is not None and relpath not in changed and cache is None:
            # scoped run without a cache: skip, and record nothing —
            # a skipped file must not look "clean" to later runs.
            stats["skipped"] += 1
            continue
        active, waived = check_module(module, active_rules)
        report.findings.extend(active)
        report.waived.extend(waived)
        new_files[relpath] = {
            "sha": shas[relpath],
            "findings": _findings_json(active),
            "waived": _findings_json(waived),
        }
        stats["ran"] += 1

    tree_entry = (cache or {}).get("tree", {})
    if cache is not None and tree_entry.get("fingerprint") == tree_print:
        stats["project_cached"] = True
        report.findings.extend(_findings_load(tree_entry.get("findings")))
        report.waived.extend(_findings_load(tree_entry.get("waived")))
        report.certified.extend(tree_entry.get("certified", []))
    else:
        project = Project(modules)
        project_active: List[Finding] = []
        project_waived: List[Finding] = []
        for project_rule in active_project:
            for finding in project_rule.check_project(project):
                owner = by_relpath.get(finding.path)
                waiver = (
                    owner.waiver_for(finding.rule, finding.line)
                    if owner is not None
                    else None
                )
                if waiver is not None:
                    project_waived.append(
                        Finding(
                            rule=finding.rule,
                            severity=finding.severity,
                            path=finding.path,
                            line=finding.line,
                            col=finding.col,
                            message=finding.message,
                            hint=finding.hint,
                            waived=True,
                            justification=waiver.justification,
                        )
                    )
                else:
                    project_active.append(finding)
            report.certified.extend(project_rule.certified())
        report.findings.extend(project_active)
        report.waived.extend(project_waived)
        tree_entry = {
            "fingerprint": tree_print,
            "findings": _findings_json(project_active),
            "waived": _findings_json(project_waived),
            "certified": list(report.certified),
        }

    if cache_path is not None and changed is None:
        # Only unscoped runs write the cache: a scoped run has not seen
        # every file, so its file table is not a faithful snapshot.
        save_cache(
            cache_path,
            {
                "version": CACHE_VERSION,
                "context": context,
                "files": new_files,
                "tree": tree_entry,
            },
        )
    elif cache_path is not None and cache is not None:
        # Scoped run over a valid cache: refresh entries that ran.
        merged = dict(cached_files)
        merged.update(new_files)
        save_cache(
            cache_path,
            {
                "version": CACHE_VERSION,
                "context": context,
                "files": merged,
                "tree": tree_entry,
            },
        )
    return report, stats
