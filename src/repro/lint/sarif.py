"""SARIF 2.1.0 emitter: the code-scanning face of the lint report.

GitHub code scanning (and every SARIF-aware viewer) consumes a single
``runs[0]`` with a tool descriptor, a rule table, and one result per
finding.  The mapping from the native report:

- every rule that ran (per-module and project passes alike) becomes a
  ``reportingDescriptor`` with its severity as the default level;
- active findings and waiver problems become plain results;
- waived findings become results carrying an ``inSource`` suppression
  with the waiver justification, so they render as dismissed instead of
  disappearing from the audit trail;
- R7's neutrality certificates ride in the run's ``properties`` bag —
  non-standard but legal, and what CI asserts on.

Columns are emitted 1-based as the spec requires (the native report is
0-based to match ``ast`` offsets).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.framework import SEVERITY_ERROR, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Tool name shown in code-scanning UIs.
TOOL_NAME = "repro-lint"


def _level(severity: str) -> str:
    return "error" if severity == SEVERITY_ERROR else "warning"


def _result(
    finding: Finding, rule_index: Dict[str, int]
) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _level(finding.severity),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    if finding.hint:
        result["message"]["text"] = f"{finding.message} [{finding.hint}]"
    if finding.waived:
        result["suppressions"] = [
            {
                "kind": "inSource",
                "justification": finding.justification,
            }
        ]
    return result


def report_to_sarif(report: Any) -> Dict[str, Any]:
    """Convert a :class:`~repro.lint.runner.LintReport` to a SARIF log."""
    descriptors: List[Dict[str, Any]] = []
    rule_index: Dict[str, int] = {}
    for rule in report.rules:
        if rule.id in rule_index:
            continue
        rule_index[rule.id] = len(descriptors)
        descriptor: Dict[str, Any] = {
            "id": rule.id,
            "name": rule.name,
            "defaultConfiguration": {"level": _level(rule.severity)},
        }
        if rule.hint:
            descriptor["shortDescription"] = {"text": rule.hint}
        descriptors.append(descriptor)

    results: List[Dict[str, Any]] = []
    for finding in list(report.findings) + list(report.problems):
        results.append(_result(finding, rule_index))
    for finding in report.waived:
        results.append(_result(finding, rule_index))

    run: Dict[str, Any] = {
        "tool": {
            "driver": {
                "name": TOOL_NAME,
                "informationUri": "https://example.invalid/repro-lint",
                "rules": descriptors,
            }
        },
        "results": results,
        "columnKind": "utf16CodeUnits",
    }
    if report.certified:
        run["properties"] = {"certified": list(report.certified)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def sarif_json(report: Any) -> str:
    """The SARIF log serialized for the CI artifact."""
    return json.dumps(report_to_sarif(report), indent=2, sort_keys=True)
