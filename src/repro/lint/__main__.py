"""CLI for repro-lint: ``python -m repro.lint [--strict] [paths...]``.

Also reachable as ``repro lint ...`` through the main CLI.  Exit status is
0 when the tree is clean, 1 when findings (strict: or warnings/waiver
problems) remain, 2 on usage errors.

Beyond the basic scan, the CLI fronts the incremental machinery
(``--changed``, ``--cache``), the SARIF emitter (``--sarif``) and the
seeded-violation positive controls (``--self-test``); see
docs/LINTING.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.cache import (
    DEFAULT_CACHE_NAME,
    git_changed_files,
    run_lint_incremental,
)
from repro.lint.runner import run_lint
from repro.lint.sarif import sarif_json


def default_target() -> Path:
    """The package source tree, found relative to this file.

    Works both for an installed package and a ``src/`` checkout, so a bare
    ``python -m repro.lint`` lints the whole ``repro`` package.
    """
    return Path(__file__).resolve().parent.parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST + call-graph determinism & protocol-invariant checker "
            "(rules R1-R8; see docs/LINTING.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings and waiver problems, not just errors",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the machine-readable JSON report to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--sarif",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a SARIF 2.1.0 log to PATH (GitHub code scanning)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "run per-module rules only on files git reports as changed "
            "(project passes still scan the full tree)"
        ),
    )
    parser.add_argument(
        "--base",
        default=None,
        metavar="REF",
        help="with --changed: also include files differing from git REF",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        nargs="?",
        const=Path(DEFAULT_CACHE_NAME),
        default=None,
        metavar="PATH",
        help=(
            "enable the content-hash result cache, stored at PATH "
            f"(default when enabled: ./{DEFAULT_CACHE_NAME})"
        ),
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help=(
            "positive controls: seed each known violation mutant into a "
            "package copy and assert its pass detects it"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the text report (exit status only)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    paths: List[Path] = args.paths or [default_target()]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"repro lint: no such path: {path}", file=sys.stderr)
        return 2

    if args.self_test:
        from repro.lint.mutants import run_self_test

        package_dir = args.paths[0] if args.paths else None
        return run_self_test(package_dir, verbose=not args.quiet)

    if args.base is not None and not args.changed:
        print("repro lint: --base requires --changed", file=sys.stderr)
        return 2

    changed = None
    if args.changed:
        try:
            changed = git_changed_files(Path.cwd(), base=args.base)
        except RuntimeError as error:
            print(f"repro lint: {error}", file=sys.stderr)
            return 2

    if args.changed or args.cache is not None:
        report, stats = run_lint_incremental(
            paths, cache_path=args.cache, changed=changed
        )
    else:
        report = run_lint(paths)
        stats = None

    json_to_stdout = args.json is not None and str(args.json) == "-"
    if args.json is not None:
        if json_to_stdout:
            print(report.to_json())
        else:
            args.json.parent.mkdir(parents=True, exist_ok=True)
            args.json.write_text(report.to_json(), encoding="utf-8")
    if args.sarif is not None:
        args.sarif.parent.mkdir(parents=True, exist_ok=True)
        args.sarif.write_text(sarif_json(report), encoding="utf-8")
    if not args.quiet:
        # keep stdout machine-readable when the JSON report goes there
        stream = sys.stderr if json_to_stdout else sys.stdout
        print(report.render_text(), file=stream)
        if stats is not None and (stats["cached"] or stats["skipped"]):
            print(
                f"incremental: {stats['ran']} ran, {stats['cached']} from "
                f"cache, {stats['skipped']} skipped"
                + (
                    ", project passes from cache"
                    if stats["project_cached"]
                    else ""
                ),
                file=stream,
            )
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
