"""CLI for repro-lint: ``python -m repro.lint [--strict] [paths...]``.

Also reachable as ``repro lint ...`` through the main CLI.  Exit status is
0 when the tree is clean, 1 when findings (strict: or warnings/waiver
problems) remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.runner import run_lint


def default_target() -> Path:
    """The package source tree, found relative to this file.

    Works both for an installed package and a ``src/`` checkout, so a bare
    ``python -m repro.lint`` lints the whole ``repro`` package.
    """
    return Path(__file__).resolve().parent.parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based determinism & protocol-invariant checker "
            "(rules R1-R5; see docs/LINTING.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings and waiver problems, not just errors",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the machine-readable JSON report to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the text report (exit status only)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    paths: List[Path] = args.paths or [default_target()]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"repro lint: no such path: {path}", file=sys.stderr)
        return 2
    report = run_lint(paths)
    json_to_stdout = args.json is not None and str(args.json) == "-"
    if args.json is not None:
        if json_to_stdout:
            print(report.to_json())
        else:
            args.json.parent.mkdir(parents=True, exist_ok=True)
            args.json.write_text(report.to_json(), encoding="utf-8")
    if not args.quiet:
        # keep stdout machine-readable when the JSON report goes there
        stream = sys.stderr if json_to_stdout else sys.stdout
        print(report.render_text(), file=stream)
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
