"""R1 rng-discipline: all randomness flows through seeded substreams.

The simulator's reproducibility contract (see ``sim/rng.py``) is that every
stochastic component draws from a named substream of one root seed.  Any
direct call into the ``random`` module or ``numpy.random`` — construction
(``random.Random(...)``, ``np.random.default_rng(...)``) or module-level
draws (``random.choice``, ``np.random.normal``) — creates an unregistered
stream whose draws either depend on global state or silently decouple from
the experiment's root seed.  Only ``sim/rng.py`` itself may touch the
underlying libraries.

Annotations (``rng: random.Random``) and ``isinstance`` checks are fine:
the rule flags *calls*, not references.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Tuple

from repro.lint.framework import Rule, path_endswith


class RngDisciplineRule(Rule):
    """Flag direct ``random.*`` / ``numpy.random.*`` calls."""

    id: ClassVar[str] = "R1"
    name: ClassVar[str] = "rng-discipline"
    hint: ClassVar[str] = (
        "draw from a SeedSequenceRegistry substream "
        "(seeds.python(name) / seeds.numpy(name)) or accept an rng parameter"
    )

    #: Files allowed to touch the RNG libraries directly.
    ALLOWED_FILES: ClassVar[Tuple[str, ...]] = ("sim/rng.py",)

    def applies_to(self, relpath: str) -> bool:
        return not any(
            path_endswith(relpath, allowed) for allowed in self.ALLOWED_FILES
        )

    def visit_Call(self, node: ast.Call) -> None:
        assert self.module is not None
        target = self.module.resolve_call_target(node.func)
        if target is not None and self._is_forbidden(target):
            self.flag(
                node,
                f"direct call to {target}() bypasses the "
                "SeedSequenceRegistry substream discipline",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_forbidden(target: str) -> bool:
        return target.startswith("random.") or target.startswith("numpy.random.")
