"""Lint orchestration: file discovery, waiver application, reporting.

``run_lint`` walks the given paths, parses every ``*.py`` file once,
discovers the trace-kind registry (any scanned file ending in
``sim/trace.py``), runs each rule over the modules it applies to, and
splits the raw findings into *active* (fail the build), *waived*
(suppressed by a justified inline waiver) and *problems* (broken waivers,
unparseable files).  The result renders as terminal text or as a
machine-readable JSON report for CI artifacts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.boundary import WorkerBoundaryRule
from repro.lint.callgraph import Project
from repro.lint.dataflow import RngProvenanceRule
from repro.lint.framework import (
    RULE_BAD_WAIVER,
    RULE_PARSE_ERROR,
    SEVERITY_ERROR,
    Finding,
    ProjectRule,
    Rule,
    SourceModule,
    path_endswith,
)
from repro.lint.neutrality import NeutralityRule
from repro.lint.rules_determinism import DeterminismHazardRule
from repro.lint.rules_numeric import FloatAccumulationRule, Gf256MisuseRule
from repro.lint.rules_rng import RngDisciplineRule
from repro.lint.rules_trace import TRACE_MODULE_SUFFIX, TraceKindRule

#: Directory names never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".pytest_cache", "build", "dist"})


def default_rules(
    trace_registry: Optional[Dict[str, str]] = None,
) -> List[Rule]:
    """Fresh instances of the per-module rule set (R1–R5, R8)."""
    return [
        RngDisciplineRule(),
        DeterminismHazardRule(),
        TraceKindRule(registry=trace_registry),
        FloatAccumulationRule(),
        Gf256MisuseRule(),
        WorkerBoundaryRule(),
    ]


def default_project_rules() -> List[ProjectRule]:
    """Fresh instances of the interprocedural pass set (R6, R7)."""
    return [
        RngProvenanceRule(),
        NeutralityRule(),
    ]


@dataclass
class LintReport:
    """Outcome of one lint run."""

    files_scanned: int = 0
    rules: List[Any] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    waived: List[Finding] = field(default_factory=list)
    problems: List[Finding] = field(default_factory=list)
    #: properties the project passes *proved* (R7 neutrality certificates).
    certified: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[Finding]:
        """Findings that fail the build (active findings + waiver problems)."""
        return self.findings + self.problems

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; in strict mode warnings fail too."""
        relevant = self.failures
        if not strict:
            relevant = [f for f in relevant if f.severity == SEVERITY_ERROR]
        return 1 if relevant else 0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready report (the CI artifact format)."""
        return {
            "version": 2,
            "files_scanned": self.files_scanned,
            "rules": [
                {
                    "id": rule.id,
                    "name": rule.name,
                    "severity": rule.severity,
                    "hint": rule.hint,
                }
                for rule in self.rules
            ],
            "findings": [f.as_dict() for f in self.findings],
            "problems": [f.as_dict() for f in self.problems],
            "waived": [f.as_dict() for f in self.waived],
            "certified": list(self.certified),
            "summary": {
                "active": len(self.findings),
                "problems": len(self.problems),
                "waived": len(self.waived),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        """Human-readable multi-line report."""
        lines: List[str] = []
        for finding in sorted(
            self.failures, key=lambda f: (f.path, f.line, f.col, f.rule)
        ):
            lines.append(finding.render())
        summary = (
            f"{self.files_scanned} files scanned: "
            f"{len(self.findings)} finding(s), "
            f"{len(self.problems)} waiver problem(s), "
            f"{len(self.waived)} waived"
        )
        lines.append(summary)
        return "\n".join(lines)


def _iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path


def _relpath(path: Path, root: Optional[Path]) -> str:
    base = root if root is not None else Path.cwd()
    try:
        return os.path.relpath(path, base).replace(os.sep, "/")
    except ValueError:  # different drive on Windows
        return str(path).replace(os.sep, "/")


def _load_modules(
    paths: Sequence[Path], root: Optional[Path]
) -> Tuple[List[SourceModule], List[Finding]]:
    modules: List[SourceModule] = []
    problems: List[Finding] = []
    for file_path in _iter_python_files(paths):
        relpath = _relpath(file_path, root)
        try:
            source = file_path.read_text(encoding="utf-8")
            modules.append(SourceModule.parse(file_path, relpath, source))
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            line = getattr(error, "lineno", None) or 1
            problems.append(
                Finding(
                    rule=RULE_PARSE_ERROR,
                    severity=SEVERITY_ERROR,
                    path=relpath,
                    line=int(line),
                    col=0,
                    message=f"cannot lint file: {error}",
                )
            )
    return modules, problems


def _waiver_problems(module: SourceModule, known_rules: Sequence[str]) -> List[Finding]:
    problems: List[Finding] = []
    seen: Set[Tuple[str, int]] = set()
    for waivers in module.waivers.values():
        for waiver in waivers:
            key = (waiver.rule, waiver.line)
            if key in seen:
                continue
            seen.add(key)
            if waiver.rule not in known_rules:
                problems.append(
                    Finding(
                        rule=RULE_BAD_WAIVER,
                        severity=SEVERITY_ERROR,
                        path=module.relpath,
                        line=waiver.line,
                        col=0,
                        message=f"waiver names unknown rule {waiver.rule!r}",
                        hint="valid rules: " + ", ".join(known_rules),
                    )
                )
            elif not waiver.justification:
                problems.append(
                    Finding(
                        rule=RULE_BAD_WAIVER,
                        severity=SEVERITY_ERROR,
                        path=module.relpath,
                        line=waiver.line,
                        col=0,
                        message=(
                            f"waiver for {waiver.rule} has no justification"
                        ),
                        hint="write lint: ok(<rule>): <why this is safe>",
                    )
                )
    return problems


def _apply_waiver(
    module: SourceModule, finding: Finding
) -> Tuple[Finding, bool]:
    """Return (finding, waived?) with the waiver folded in when present."""
    waiver = module.waiver_for(finding.rule, finding.line)
    if waiver is None:
        return finding, False
    return (
        Finding(
            rule=finding.rule,
            severity=finding.severity,
            path=finding.path,
            line=finding.line,
            col=finding.col,
            message=finding.message,
            hint=finding.hint,
            waived=True,
            justification=waiver.justification,
        ),
        True,
    )


def check_module(
    module: SourceModule, rules: Sequence[Rule]
) -> Tuple[List[Finding], List[Finding]]:
    """Run every applicable per-module rule; returns (active, waived)."""
    active: List[Finding] = []
    waived: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(module.relpath):
            continue
        for finding in rule.check(module):
            resolved, was_waived = _apply_waiver(module, finding)
            (waived if was_waived else active).append(resolved)
    return active, waived


def run_lint(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    rules: Optional[List[Rule]] = None,
    trace_registry: Optional[Dict[str, str]] = None,
    project_rules: Optional[List[ProjectRule]] = None,
    module_filter: Optional[Set[str]] = None,
) -> LintReport:
    """Lint every Python file under *paths* and return the full report.

    Args:
        paths: Files or directories to scan.
        root: Base for the relative paths in findings (default: cwd).
        rules: Per-module rule instances to run (default: R1–R5, R8).
        trace_registry: Explicit kind registry for R3; by default the
            registry is discovered from a scanned ``sim/trace.py``.
        project_rules: Interprocedural passes run over the whole scanned
            tree (default: R6, R7).  These always see every module, even
            when *module_filter* restricts the per-module rules.
        module_filter: When given, per-module rules run only on modules
            whose relpath is in the set (the ``--changed`` accelerator);
            waiver validation and project passes still cover the full
            tree.
    """
    modules, problems = _load_modules(paths, root)
    active_rules = rules if rules is not None else default_rules(trace_registry)
    active_project_rules = (
        project_rules if project_rules is not None else default_project_rules()
    )

    for rule in active_rules:
        if isinstance(rule, TraceKindRule):
            for module in modules:
                if path_endswith(module.relpath, TRACE_MODULE_SUFFIX):
                    rule.learn_registry(module)
                    break

    report = LintReport(
        files_scanned=len(modules),
        rules=list(active_rules) + list(active_project_rules),
    )
    report.problems.extend(problems)
    known_rules = [rule.id for rule in report.rules]

    by_relpath = {module.relpath: module for module in modules}
    for module in modules:
        report.problems.extend(_waiver_problems(module, known_rules))
        if module_filter is not None and module.relpath not in module_filter:
            continue
        active, waived = check_module(module, active_rules)
        report.findings.extend(active)
        report.waived.extend(waived)

    project = Project(modules)
    for project_rule in active_project_rules:
        for finding in project_rule.check_project(project):
            owner = by_relpath.get(finding.path)
            if owner is not None:
                resolved, was_waived = _apply_waiver(owner, finding)
                (report.waived if was_waived else report.findings).append(
                    resolved
                )
            else:
                report.findings.append(finding)
        report.certified.extend(project_rule.certified())
    return report
