"""Project call graph: module-qualified name resolution over a source tree.

The per-module rules (R1..R5) see one file at a time; the interprocedural
passes (R6 provenance, R7 neutrality) need to know *who calls whom* across
the whole scanned tree.  This module builds that graph from the parsed
:class:`~repro.lint.framework.SourceModule` set — still without importing
or executing anything.

Resolution handles, in decreasing order of precision:

- module-level functions and classes, by dotted module name derived from
  the file's relative path (``src/repro/core/gossip.py`` ->
  ``repro.core.gossip``);
- aliased imports, both ``import m as alias`` and ``from m import f as g``,
  plus relative ``from . import x`` forms (resolved against the importing
  module's package);
- methods: ``self.m()`` / ``cls.m()`` inside a class body, looked up on the
  class and then its in-project bases, and ``obj.m()`` where ``obj`` is a
  parameter annotated with an in-project class or a local assigned from an
  in-project constructor call;
- constructor calls ``ClassName(...)``, which resolve to
  ``ClassName.__init__`` when the class defines one;
- local aliases (``g = f; g()``);
- first-class function values: when a known function is passed as an
  argument to a resolvable callee whose matching parameter is *invoked*
  inside the callee body, a ``callback`` edge callee -> argument is added.

Everything unresolvable degrades to "no edge" — the passes built on top
are designed so that missing edges produce missing findings, never false
ones.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.framework import SourceModule

#: Call-site kinds recorded on edges.
KIND_DIRECT = "direct"
KIND_METHOD = "method"
KIND_CONSTRUCTOR = "constructor"
KIND_CALLBACK = "callback"


def module_name_for(relpath: str) -> str:
    """Dotted module name for a posix-ish *relpath*.

    ``src/`` layout prefixes are stripped so a checkout scanned from the
    repo root and an installed package resolve to the same names
    (``src/repro/sim/rng.py`` and ``repro/sim/rng.py`` both become
    ``repro.sim.rng``); ``__init__.py`` maps to its package.
    """
    parts = [p for p in relpath.replace("\\", "/").split("/") if p]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition in the scanned tree."""

    qname: str
    module: SourceModule
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    #: qualified name of the enclosing class, if this is a method.
    class_qname: Optional[str] = None
    #: positional-or-keyword parameter names, ``self``/``cls`` included.
    params: Tuple[str, ...] = ()
    #: parameters that are *called* somewhere in the body (``cb()``).
    invoked_params: FrozenSet[str] = frozenset()

    @property
    def name(self) -> str:
        """The bare function name (last qname component)."""
        return self.qname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One class definition: its methods and resolvable bases."""

    qname: str
    module: SourceModule
    node: ast.ClassDef
    #: method name -> function qname.
    methods: Dict[str, str] = field(default_factory=dict)
    #: base-class expressions resolved to qualified names (best effort).
    bases: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        """The bare class name."""
        return self.qname.rsplit(".", 1)[-1]


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, anchored at its AST node."""

    caller: str
    callee: str
    node: ast.Call
    kind: str = KIND_DIRECT
    #: (position or keyword, function qname) for arguments that are
    #: themselves known functions — the raw material of callback edges.
    passed_functions: Tuple[Tuple[str, str], ...] = ()


class _DefCollector(ast.NodeVisitor):
    """First pass: collect function/class definitions with qnames."""

    def __init__(self, graph: "CallGraph", module: SourceModule) -> None:
        self.graph = graph
        self.module = module
        self.scope: List[str] = [module_name_for(module.relpath)]
        self.class_stack: List[ClassInfo] = []

    def _qname(self, name: str) -> str:
        return ".".join(self.scope + [name])

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qname = self._qname(node.name)
        bases = []
        for base in node.bases:
            resolved = self._resolve_base(base)
            if resolved is not None:
                bases.append(resolved)
        info = ClassInfo(
            qname=qname, module=self.module, node=node, bases=tuple(bases)
        )
        self.graph.classes[qname] = info
        self.graph.classes_by_name.setdefault(node.name, []).append(info)
        self.scope.append(node.name)
        self.class_stack.append(info)
        self.generic_visit(node)
        self.class_stack.pop()
        self.scope.pop()

    def _resolve_base(self, base: ast.expr) -> Optional[str]:
        if isinstance(base, ast.Name):
            target = self.module.resolve_call_target(base)
            if target is not None:
                return target
            return ".".join(self.scope[:1] + [base.id])
        if isinstance(base, ast.Attribute):
            return self.module.resolve_call_target(base)
        return None

    def _visit_def(self, node: ast.AST, name: str) -> None:
        qname = self._qname(name)
        args = getattr(node, "args")
        params = tuple(
            a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)
        )
        info = FunctionInfo(
            qname=qname,
            module=self.module,
            node=node,
            class_qname=self.class_stack[-1].qname if self.class_stack else None,
            params=params,
            invoked_params=_invoked_params(node, params),
        )
        self.graph.functions[qname] = info
        if self.class_stack:
            self.class_stack[-1].methods[name] = qname
        self.scope.append(name)
        # Do not treat nested defs as methods of an enclosing class.
        saved = self.class_stack
        self.class_stack = []
        self.generic_visit(node)
        self.class_stack = saved
        self.scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_def(node, node.name)


def _invoked_params(func: ast.AST, params: Tuple[str, ...]) -> FrozenSet[str]:
    """Parameters called as functions anywhere in *func*'s body."""
    names = set(params)
    invoked: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in names:
                invoked.add(node.func.id)
    return frozenset(invoked)


class CallGraph:
    """Callable definitions plus resolved call edges for one source tree."""

    def __init__(self) -> None:
        #: function qname -> info.
        self.functions: Dict[str, FunctionInfo] = {}
        #: class qname -> info.
        self.classes: Dict[str, ClassInfo] = {}
        #: bare class name -> every class of that name (for suffix lookups).
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        #: caller qname -> call sites (module-level code uses the module name).
        self.calls_from: Dict[str, List[CallSite]] = {}
        #: callee qname -> call sites.
        self.calls_to: Dict[str, List[CallSite]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, modules: Sequence[SourceModule]) -> "CallGraph":
        """Build the graph over *modules* (deterministic order)."""
        graph = cls()
        ordered = sorted(modules, key=lambda m: m.relpath)
        for module in ordered:
            _DefCollector(graph, module).visit(module.tree)
        for module in ordered:
            _EdgeCollector(graph, module).collect()
        graph._add_callback_edges()
        return graph

    def _add_edge(self, site: CallSite) -> None:
        self.calls_from.setdefault(site.caller, []).append(site)
        self.calls_to.setdefault(site.callee, []).append(site)

    def _add_callback_edges(self) -> None:
        """callee -> passed-function edges for invoked parameters."""
        for sites in list(self.calls_from.values()):
            for site in sites:
                callee = self.functions.get(site.callee)
                if callee is None or not site.passed_functions:
                    continue
                for slot, fn_qname in site.passed_functions:
                    param = self._param_for_slot(callee, slot)
                    if param is not None and param in callee.invoked_params:
                        self._add_edge(
                            CallSite(
                                caller=callee.qname,
                                callee=fn_qname,
                                node=site.node,
                                kind=KIND_CALLBACK,
                            )
                        )

    @staticmethod
    def _param_for_slot(callee: FunctionInfo, slot: str) -> Optional[str]:
        if slot.isdigit():
            index = int(slot)
            params = callee.params
            if params and params[0] in ("self", "cls"):
                # Direct Name calls never bind self; constructor calls are
                # handled with the +1 shift at edge-collection time.
                params = params[1:]
            if index < len(params):
                return params[index]
            return None
        return slot if slot in callee.params else None

    # -- queries -----------------------------------------------------------

    def callees(self, qname: str) -> List[CallSite]:
        """Call sites whose caller is *qname*."""
        return self.calls_from.get(qname, [])

    def callers(self, qname: str) -> List[CallSite]:
        """Call sites that target *qname*."""
        return self.calls_to.get(qname, [])

    def method(self, class_qname: str, name: str) -> Optional[str]:
        """Resolve method *name* on the class or its in-project bases."""
        seen: Set[str] = set()
        stack = [class_qname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                # Suffix match: bases recorded as bare/dotted external names
                # may still be classes we scanned.
                tail = current.rsplit(".", 1)[-1]
                for candidate in self.classes_by_name.get(tail, []):
                    if candidate.qname not in seen:
                        stack.append(candidate.qname)
                continue
            if name in info.methods:
                return info.methods[name]
            stack.extend(info.bases)
        return None

    def class_named(self, name: str) -> Optional[ClassInfo]:
        """The unique scanned class with bare name *name*, if unambiguous."""
        candidates = self.classes_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None


class _EdgeCollector:
    """Second pass: resolve every call expression in one module."""

    def __init__(self, graph: CallGraph, module: SourceModule) -> None:
        self.graph = graph
        self.module = module
        self.module_qname = module_name_for(module.relpath)
        #: module-scope name -> qname (defs, classes, imports, aliases).
        self.module_scope: Dict[str, str] = {}
        self._collect_module_scope()

    def _collect_module_scope(self) -> None:
        prefix = self.module_qname + "." if self.module_qname else ""
        for node in self.module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_scope[node.name] = prefix + node.name
            elif isinstance(node, ast.ClassDef):
                self.module_scope[node.name] = prefix + node.name
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Name
            ):
                # module-level alias: g = f
                source = node.value.id
                for target in node.targets:
                    if isinstance(target, ast.Name) and source in self.module_scope:
                        self.module_scope[target.id] = self.module_scope[source]
        for alias, target in self.module.imports.items():
            self.module_scope.setdefault(alias, target)
        for alias, (mod, attr) in self.module.from_imports.items():
            self.module_scope.setdefault(alias, f"{mod}.{attr}")
        # Relative imports (skipped by SourceModule): resolve against the
        # importing module's package so fixture trees can use them too.
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.ImportFrom) and node.level:
                base_parts = self.module_qname.split(".") if self.module_qname else []
                # level 1 = current package; each extra level pops one more.
                # For a package __init__ the qname already IS the package.
                is_package = self.module.relpath.replace("\\", "/").endswith(
                    "/__init__.py"
                ) or self.module.relpath == "__init__.py"
                keep = len(base_parts) - node.level + (1 if is_package else 0)
                if keep < 0:
                    continue
                base = ".".join(base_parts[:keep])
                mod = f"{base}.{node.module}" if node.module and base else (
                    node.module or base
                )
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.module_scope.setdefault(
                        alias.asname or alias.name, f"{mod}.{alias.name}"
                    )

    # -- resolution --------------------------------------------------------

    def collect(self) -> None:
        self._walk_scope(
            self.module.tree.body,
            caller=self.module_qname or self.module.relpath,
            func=None,
        )

    def _walk_scope(
        self,
        body: Sequence[ast.stmt],
        caller: str,
        func: Optional[FunctionInfo],
    ) -> None:
        local_types = _LocalContext(self, func)
        for stmt in body:
            local_types.scan_statement(stmt)
        for stmt in body:
            self._walk_statement(stmt, caller, func, local_types)

    def _walk_statement(
        self,
        stmt: ast.stmt,
        caller: str,
        func: Optional[FunctionInfo],
        context: "_LocalContext",
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qname = self._lookup_def(stmt, caller)
            info = self.graph.functions.get(qname) if qname else None
            if info is not None:
                self._walk_scope(stmt.body, caller=qname or caller, func=info)
            # default values evaluate in the enclosing scope
            for default in list(stmt.args.defaults) + [
                d for d in stmt.args.kw_defaults if d is not None
            ]:
                self._visit_expr_calls(default, caller, func, context)
            return
        if isinstance(stmt, ast.ClassDef):
            class_qname = self._lookup_def(stmt, caller)
            for sub in stmt.body:
                self._walk_statement(
                    sub, caller=class_qname or caller, func=None, context=context
                )
            return
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self._record_call(node, caller, func, context)

    def _lookup_def(self, stmt: ast.stmt, caller: str) -> str:
        name = getattr(stmt, "name", "")
        qname = f"{caller}.{name}"
        if qname in self.graph.functions or qname in self.graph.classes:
            return qname
        return qname

    def _visit_expr_calls(
        self,
        expr: ast.expr,
        caller: str,
        func: Optional[FunctionInfo],
        context: "_LocalContext",
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._record_call(node, caller, func, context)

    def _record_call(
        self,
        node: ast.Call,
        caller: str,
        func: Optional[FunctionInfo],
        context: "_LocalContext",
    ) -> None:
        resolved = self.resolve_callable(node.func, func, context)
        if resolved is None:
            return
        callee, kind = resolved
        shift = 1 if kind == KIND_CONSTRUCTOR else 0
        passed: List[Tuple[str, str]] = []
        for index, arg in enumerate(node.args):
            fn = self._as_function(arg, func, context)
            if fn is not None:
                passed.append((str(index + shift), fn))
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            fn = self._as_function(keyword.value, func, context)
            if fn is not None:
                passed.append((keyword.arg, fn))
        self.graph._add_edge(
            CallSite(
                caller=caller,
                callee=callee,
                node=node,
                kind=kind,
                passed_functions=tuple(passed),
            )
        )

    def _as_function(
        self,
        expr: ast.expr,
        func: Optional[FunctionInfo],
        context: "_LocalContext",
    ) -> Optional[str]:
        """The function qname *expr* refers to (not calls), if known."""
        if isinstance(expr, ast.Name):
            qname = context.alias(expr.id) or self.module_scope.get(expr.id)
            if qname in self.graph.functions:
                return qname
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            if expr.value.id in ("self", "cls") and func is not None:
                if func.class_qname is not None:
                    return self.graph.method(func.class_qname, expr.attr)
            target = self.module.resolve_call_target(expr)
            if target in self.graph.functions:
                return target
        return None

    def resolve_callable(
        self,
        expr: ast.expr,
        func: Optional[FunctionInfo],
        context: "_LocalContext",
    ) -> Optional[Tuple[str, str]]:
        """Resolve a call target expression to (qname, kind)."""
        if isinstance(expr, ast.Name):
            qname = context.alias(expr.id) or self.module_scope.get(expr.id)
            if qname is None:
                return None
            if qname in self.graph.classes:
                init = self.graph.method(qname, "__init__")
                return (init or qname, KIND_CONSTRUCTOR)
            if qname in self.graph.functions:
                return (qname, KIND_DIRECT)
            # imported but not scanned (external): still a stable name.
            return (qname, KIND_DIRECT)
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls") and func is not None:
                    if func.class_qname is not None:
                        method = self.graph.method(func.class_qname, expr.attr)
                        if method is not None:
                            return (method, KIND_METHOD)
                    return None
                class_qname = context.type_of(base.id)
                if class_qname is not None:
                    method = self.graph.method(class_qname, expr.attr)
                    if method is not None:
                        return (method, KIND_METHOD)
                    return None
            target = self.module.resolve_call_target(expr)
            if target is not None:
                if target in self.graph.classes:
                    init = self.graph.method(target, "__init__")
                    return (init or target, KIND_CONSTRUCTOR)
                return (target, KIND_DIRECT)
        return None


class _LocalContext:
    """Per-scope alias and instance-type tables (light inference)."""

    def __init__(
        self, collector: _EdgeCollector, func: Optional[FunctionInfo]
    ) -> None:
        self.collector = collector
        self.func = func
        #: local name -> function qname (g = f).
        self._aliases: Dict[str, str] = {}
        #: local name -> class qname (x = ClassName(...), or annotation).
        self._types: Dict[str, str] = {}
        if func is not None:
            self._seed_param_types(func)

    def _seed_param_types(self, func: FunctionInfo) -> None:
        args = getattr(func.node, "args")
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            class_qname = self._annotation_class(arg.annotation)
            if class_qname is not None:
                self._types[arg.arg] = class_qname

    def _annotation_class(
        self, annotation: Optional[ast.expr]
    ) -> Optional[str]:
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            name = annotation.value.strip()
            try:
                annotation = ast.parse(name, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.Name):
            qname = self.collector.module_scope.get(annotation.id)
            if qname in self.collector.graph.classes:
                return qname
            info = self.collector.graph.class_named(annotation.id)
            return info.qname if info else None
        if isinstance(annotation, ast.Subscript):
            # Optional[X] / "X | None" style: use the inner name.
            inner = annotation.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return self._annotation_class(
                inner if isinstance(inner, ast.expr) else None
            )
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            return self._annotation_class(
                annotation.left
            ) or self._annotation_class(annotation.right)
        return None

    def scan_statement(self, stmt: ast.stmt) -> None:
        """Record aliases / instance types bound by *stmt* (pre-pass)."""
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                return
            value = stmt.value
            if isinstance(value, ast.Name):
                qname = self.collector.module_scope.get(value.id)
                if qname in self.collector.graph.functions:
                    self._aliases[target.id] = qname
            elif isinstance(value, ast.Call):
                resolved = self.collector.resolve_callable(
                    value.func, self.func, self
                )
                if resolved is not None and resolved[1] == KIND_CONSTRUCTOR:
                    class_qname = resolved[0]
                    if class_qname.endswith(".__init__"):
                        class_qname = class_qname[: -len(".__init__")]
                    self._types[target.id] = class_qname
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            class_qname = self._annotation_class(stmt.annotation)
            if class_qname is not None:
                self._types[stmt.target.id] = class_qname

    def alias(self, name: str) -> Optional[str]:
        """Function qname locally aliased to *name*, if any."""
        return self._aliases.get(name)

    def type_of(self, name: str) -> Optional[str]:
        """Class qname of local *name*, if inferred."""
        return self._types.get(name)


@dataclass
class Project:
    """The whole-tree view interprocedural passes run against."""

    modules: List[SourceModule]
    _graph: Optional[CallGraph] = None

    @property
    def by_relpath(self) -> Dict[str, SourceModule]:
        return {m.relpath: m for m in self.modules}

    @property
    def graph(self) -> CallGraph:
        """The call graph, built on first use and cached."""
        if self._graph is None:
            self._graph = CallGraph.build(self.modules)
        return self._graph
