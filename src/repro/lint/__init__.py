"""repro-lint: AST-based determinism and protocol-invariant checker.

The reproduction's credibility rests on bitwise determinism — one unseeded
draw or unordered-set iteration silently shifts every downstream clock —
and on a handful of protocol invariants (trace kinds registered, GF(256)
arithmetic routed through the field implementation).  This package enforces
those repo-specific contracts by machine:

- **R1 rng-discipline** — all randomness flows through
  :class:`repro.sim.rng.SeedSequenceRegistry` substreams or an explicit
  ``rng`` parameter; no direct ``random.*`` / ``numpy.random.*`` calls
  outside ``sim/rng.py``.
- **R2 determinism-hazards** — no iteration over sets, no unsorted dict
  views, no wall-clock reads, no ``id()``-based ordering inside the
  ``core/``, ``sim/`` and ``faults/`` hot paths.
- **R3 trace-kinds** — every ``kind`` passed to trace emission must be
  declared in the ``TRACE_KINDS`` registry of ``sim/trace.py``.
- **R4 float-accumulation** — no bare ``sum()`` over simulation-time floats
  in ``analysis/`` and ``sim/metrics.py``; use ``math.fsum`` or waive.
- **R5 gf256-misuse** — no Python ``+``/``*``/``^``/``**`` on objects named
  as GF(256) vectors; field arithmetic lives in ``repro.coding.gf256``.

Run it with ``python -m repro.lint [--strict] [paths...]`` or
``repro lint``.  Findings can be waived inline with a justified comment::

    total = sum(counts)  # lint: ok(R4): integer edge counts, exact

See ``docs/LINTING.md`` for the rule catalog and how to add a rule.
"""

from __future__ import annotations

from repro.lint.framework import Finding, Rule, SourceModule, Waiver
from repro.lint.rules_determinism import DeterminismHazardRule
from repro.lint.rules_numeric import FloatAccumulationRule, Gf256MisuseRule
from repro.lint.rules_rng import RngDisciplineRule
from repro.lint.rules_trace import TraceKindRule, extract_trace_registry
from repro.lint.runner import LintReport, default_rules, run_lint

__all__ = [
    "DeterminismHazardRule",
    "Finding",
    "FloatAccumulationRule",
    "Gf256MisuseRule",
    "LintReport",
    "RngDisciplineRule",
    "Rule",
    "SourceModule",
    "TraceKindRule",
    "Waiver",
    "default_rules",
    "extract_trace_registry",
    "run_lint",
]
