"""R8: mutable state crossing the worker fork/pipe boundary.

The sweep runner (PR 4) and chaos engine (PR 5) get crash isolation from
a process-per-worker pool: each worker is handed a self-contained spec
over a pipe and rebuilds its world from scratch, which is what makes
parallel runs byte-identical to serial ones.  That property silently
dies when state sneaks across the boundary some other way:

- **module-level mutable bindings** (lists, dicts, sets, ``bytearray``,
  ``deque``/``defaultdict``/``Counter``) are copied into the child at
  fork on Linux but re-imported fresh under spawn — mutations made
  before the fork are platform-dependent worker state;
- **closures passed as process targets** (a ``lambda`` or a nested
  function handed to ``Process(target=...)``) capture the parent's live
  objects, don't pickle under spawn, and tie the child to parent state
  that the journal never records;
- **``global`` rebinding** inside functions turns module state into a
  cross-call side channel that fork timing decides the value of.

R8 is scoped to ``runner/`` and ``chaos/`` — the only packages that own
the boundary.  Immutable module constants (numbers, strings, tuples,
``frozenset``, compiled regexes) are fine and not flagged; genuinely
read-only registries built once at import time can carry an inline
``# lint: ok(R8): <why>`` waiver.
"""

from __future__ import annotations

import ast
from typing import ClassVar, List, Optional, Set

from repro.lint.framework import (
    SEVERITY_WARNING,
    Finding,
    Rule,
    SourceModule,
    path_within,
)

#: Builtin / stdlib constructors whose results are mutable containers.
MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.deque",
        "collections.defaultdict",
        "collections.Counter",
        "collections.OrderedDict",
        "deque",
        "defaultdict",
        "Counter",
        "OrderedDict",
    }
)


class WorkerBoundaryRule(Rule):
    """R8: no mutable state across the pool's fork/pipe boundary."""

    id: ClassVar[str] = "R8"
    name: ClassVar[str] = "worker-boundary"
    severity: ClassVar[str] = SEVERITY_WARNING
    hint: ClassVar[str] = (
        "workers must rebuild state from the pipe-delivered spec; make "
        "module constants immutable or waive read-only registries"
    )

    def __init__(self) -> None:
        super().__init__()
        self._function_depth = 0
        #: names of functions defined inside another function (closures).
        self._nested_defs: Set[str] = set()

    def applies_to(self, relpath: str) -> bool:
        return path_within(relpath, "runner", "chaos")

    def check(self, module: SourceModule) -> List[Finding]:
        self._function_depth = 0
        self._nested_defs = set()
        return super().check(module)

    # -- module-level mutables ---------------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    self._check_module_binding(target, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._check_module_binding(stmt.target, stmt.value)
        self.generic_visit(node)

    def _check_module_binding(
        self, target: ast.expr, value: ast.expr
    ) -> None:
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if name.startswith("__") and name.endswith("__"):
            return  # __all__ and friends are interpreter-facing, not state
        description = self._mutable_description(value)
        if description is not None:
            self.flag(
                value,
                f"module-level binding {name!r} is a mutable {description}; "
                "it crosses the worker fork boundary as shared state",
            )

    def _mutable_description(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.List):
            return "list display"
        if isinstance(value, ast.Dict):
            return "dict display"
        if isinstance(value, ast.Set):
            return "set display"
        if isinstance(value, ast.ListComp):
            return "list comprehension"
        if isinstance(value, ast.DictComp):
            return "dict comprehension"
        if isinstance(value, ast.SetComp):
            return "set comprehension"
        if isinstance(value, ast.Call):
            assert self.module is not None
            resolved = self.module.resolve_call_target(value.func)
            if resolved is None and isinstance(value.func, ast.Name):
                resolved = value.func.id
            if resolved in MUTABLE_CONSTRUCTORS:
                return f"{resolved}() container"
        return None

    # -- closures over the process boundary --------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node: ast.AST) -> None:
        if self._function_depth > 0:
            self._nested_defs.add(getattr(node, "name"))
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_Global(self, node: ast.Global) -> None:
        self.flag(
            node,
            "global rebinding of "
            + ", ".join(repr(n) for n in node.names)
            + " makes module state a cross-fork side channel",
        )

    def visit_Call(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg == "target":
                self._check_target(keyword.value)
        self.generic_visit(node)

    def _check_target(self, value: ast.expr) -> None:
        if isinstance(value, ast.Lambda):
            self.flag(
                value,
                "lambda passed as a process target captures parent state "
                "across the fork/pipe boundary",
            )
        elif isinstance(value, ast.Name) and value.id in self._nested_defs:
            self.flag(
                value,
                f"nested function {value.id!r} passed as a process target "
                "closes over parent state across the fork/pipe boundary",
            )
