"""R6: interprocedural RNG provenance (taint) analysis.

R1 flags a literal ``np.random.default_rng(...)`` at its construction
site; R6 follows the *value*.  Every RNG-like value in the scanned tree
is classified on a small lattice::

    UNTRACKED < REGISTRY < BLESSED < TAINTED

- ``REGISTRY``: a :class:`SeedSequenceRegistry` (constructed, spawned,
  or received through a ``seeds``/``registry`` parameter or attribute);
- ``BLESSED``: an RNG with airtight provenance — the result of
  ``registry.python(name)`` / ``registry.numpy(name)``, or a value
  received through an explicit ``rng``-named parameter;
- ``TAINTED``: an RNG whose seed chain is broken — constructed from
  ``random.Random`` / ``numpy.random.default_rng`` and friends anywhere
  outside the ``SeedSequenceRegistry`` implementation itself, no matter
  how many helpers, attributes, returns, or callbacks it travels
  through.

Taint propagates through local assignments, ``self.attr`` writes (class
attribute summaries), return values (per-function summaries), call-site
argument-to-parameter binding over the project call graph, and functions
passed as callbacks to parameters the callee invokes.  Summaries are
joined to a fixed point, then one reporting pass emits findings at:

- any method call drawn on a TAINTED receiver (the unseeded draw);
- any TAINTED value passed to an ``rng``-named parameter (the
  laundering site that turns an unseeded RNG into an apparently blessed
  one);
- TAINTED default parameter values and module-level TAINTED bindings
  (ambient RNGs shared across calls / processes).

``UNTRACKED`` is silent by construction: a value the analysis cannot
prove tainted never produces a finding, so missing call-graph edges
degrade to missing findings, never false positives.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.callgraph import (
    KIND_CONSTRUCTOR,
    CallGraph,
    CallSite,
    FunctionInfo,
    Project,
    module_name_for,
)
from repro.lint.framework import (
    SEVERITY_ERROR,
    Finding,
    ProjectRule,
    SourceModule,
)

# -- the lattice -----------------------------------------------------------

UNTRACKED = 0
REGISTRY = 1
BLESSED = 2
TAINTED = 3

#: Raw RNG constructors whose results are TAINTED outside the registry.
TAINTED_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "numpy.random.Philox",
        "numpy.random.PCG64",
        "numpy.random.MT19937",
        "numpy.random.SeedSequence",
    }
)

#: The blessing implementation — raw constructions inside this class are
#: the legitimate origin of every seeded stream.
REGISTRY_CLASS = "SeedSequenceRegistry"

#: Registry-typed parameter / attribute names.
REGISTRY_NAMES = frozenset({"seeds", "_seeds", "registry", "_registry"})

#: Methods on a registry that mint blessed RNGs.
BLESSING_METHODS = frozenset({"python", "numpy"})


def _is_rng_param(name: str) -> bool:
    """``rng`` and ``*_rng`` parameters carry the explicit-rng contract."""
    return name == "rng" or name.endswith("_rng")


def _annotation_text(annotation: Optional[ast.expr]) -> str:
    if annotation is None:
        return ""
    try:
        return ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return ""


def _param_seed_taint(arg: ast.arg) -> int:
    """Initial taint a parameter carries from its name/annotation alone."""
    text = _annotation_text(arg.annotation)
    if arg.arg in REGISTRY_NAMES or REGISTRY_CLASS in text:
        return REGISTRY
    if _is_rng_param(arg.arg) or "Random" in text or "Generator" in text:
        return BLESSED
    return UNTRACKED


class _TaintAnalysis:
    """One fixed-point run over a project; findings on the final pass."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.graph: CallGraph = project.graph
        #: (function qname, param name) -> joined incoming taint.
        self.param: Dict[Tuple[str, str], int] = {}
        #: function qname -> joined return taint.
        self.ret: Dict[str, int] = {}
        #: (class qname, attr name) -> joined attribute taint.
        self.attr: Dict[Tuple[str, str], int] = {}
        #: (module qname, name) -> module-level binding taint.
        self.modvar: Dict[Tuple[str, str], int] = {}
        #: (callee qname, param) -> function qnames bound as callbacks.
        self.callbacks: Dict[Tuple[str, str], Set[str]] = {}
        #: Call node id -> resolved call site.
        self.site_by_node: Dict[int, CallSite] = {}
        self.reporting = False
        self._findings: Dict[Tuple[str, int, int, str], Finding] = {}
        self._changed = False
        self._index_sites()

    def _index_sites(self) -> None:
        for sites in self.graph.calls_from.values():
            for site in sites:
                self.site_by_node[id(site.node)] = site
                callee = self.graph.functions.get(site.callee)
                if callee is None:
                    continue
                for slot, fn_qname in site.passed_functions:
                    param = CallGraph._param_for_slot(callee, slot)
                    if param is not None and param in callee.invoked_params:
                        self.callbacks.setdefault(
                            (callee.qname, param), set()
                        ).add(fn_qname)

    # -- joins -------------------------------------------------------------

    def _join(self, table: Dict[Any, int], key: Any, taint: int) -> None:
        old = table.get(key, UNTRACKED)
        new = max(old, taint)
        if new != old:
            table[key] = new
            self._changed = True

    # -- driver ------------------------------------------------------------

    def run(self) -> List[Finding]:
        ordered = sorted(self.graph.functions)
        modules = sorted(self.project.modules, key=lambda m: m.relpath)
        for _ in range(10):
            self._changed = False
            for module in modules:
                self._analyze_module(module)
            for qname in ordered:
                self._analyze_function(self.graph.functions[qname])
            if not self._changed:
                break
        self.reporting = True
        for module in modules:
            self._analyze_module(module)
        for qname in ordered:
            self._analyze_function(self.graph.functions[qname])
        return sorted(
            self._findings.values(), key=lambda f: (f.path, f.line, f.col)
        )

    # -- per-scope analysis ------------------------------------------------

    def _analyze_module(self, module: SourceModule) -> None:
        qname = module_name_for(module.relpath)
        env: Dict[str, int] = {}
        scope = _Scope(self, module, qname, None, env)
        for stmt in module.tree.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # analyzed via their FunctionInfo entries
            scope.walk_statement(stmt)
        for name, taint in env.items():
            self._join(self.modvar, (qname, name), taint)

    def _analyze_function(self, fn: FunctionInfo) -> None:
        args = getattr(fn.node, "args")
        env: Dict[str, int] = {}
        module_qname = module_name_for(fn.module.relpath)
        scope = _Scope(self, fn.module, module_qname, fn, env)
        all_args = list(args.posonlyargs) + list(args.args) + list(
            args.kwonlyargs
        )
        for arg in all_args:
            env[arg.arg] = max(
                _param_seed_taint(arg),
                self.param.get((fn.qname, arg.arg), UNTRACKED),
            )
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            taint = scope.taint_of(default)
            if taint >= TAINTED:
                self.flag(
                    fn.module,
                    default,
                    "default parameter value is an unseeded RNG shared "
                    "across all calls",
                )
        for stmt in getattr(fn.node, "body"):
            scope.walk_statement(stmt)

    # -- findings ----------------------------------------------------------

    def flag(self, module: SourceModule, node: ast.AST, message: str) -> None:
        if not self.reporting:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (module.relpath, line, col, message)
        if key in self._findings:
            return
        self._findings[key] = Finding(
            rule=RngProvenanceRule.id,
            severity=RngProvenanceRule.severity,
            path=module.relpath,
            line=line,
            col=col,
            message=message,
            hint=RngProvenanceRule.hint,
        )


class _Scope:
    """Evaluator for one function body (or one module's top level)."""

    def __init__(
        self,
        analysis: _TaintAnalysis,
        module: SourceModule,
        module_qname: str,
        fn: Optional[FunctionInfo],
        env: Dict[str, int],
    ) -> None:
        self.analysis = analysis
        self.module = module
        self.module_qname = module_qname
        self.fn = fn
        self.env = env

    # -- statements --------------------------------------------------------

    def walk_statement(self, stmt: ast.stmt) -> None:
        a = self.analysis
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are separate FunctionInfo entries
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Assign):
            taint = self.taint_of(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, taint, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                taint = self.taint_of(stmt.value)
                self._bind_target(stmt.target, taint, stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self.taint_of(stmt.value)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None and self.fn is not None:
                a._join(a.ret, self.fn.qname, self.taint_of(stmt.value))
            elif stmt.value is not None:
                self.taint_of(stmt.value)
            return
        if isinstance(stmt, ast.Expr):
            self.taint_of(stmt.value)
            return
        if isinstance(stmt, ast.If):
            self.taint_of(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self.walk_statement(sub)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.taint_of(stmt.iter)
            for sub in stmt.body + stmt.orelse:
                self.walk_statement(sub)
            return
        if isinstance(stmt, ast.While):
            self.taint_of(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self.walk_statement(sub)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.taint_of(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(
                        item.optional_vars, taint, item.context_expr
                    )
            for sub in stmt.body:
                self.walk_statement(sub)
            return
        if isinstance(stmt, ast.Try):
            for sub in stmt.body + stmt.orelse + stmt.finalbody:
                self.walk_statement(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self.walk_statement(sub)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self.taint_of(node)
            return
        # Pass/Break/Continue/Import/Global/Nonlocal: nothing flows.
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self.taint_of(node)

    def _bind_target(
        self, target: ast.expr, taint: int, value: ast.expr
    ) -> None:
        a = self.analysis
        if isinstance(target, ast.Name):
            if self.fn is None:
                # module level: TAINTED globals are ambient state.
                if taint >= TAINTED:
                    a.flag(
                        self.module,
                        value,
                        f"module-level binding {target.id!r} holds an "
                        "unseeded RNG",
                    )
                a._join(a.modvar, (self.module_qname, target.id), taint)
            else:
                self.env[target.id] = taint
        elif isinstance(target, ast.Attribute):
            base = target.value
            if (
                isinstance(base, ast.Name)
                and base.id in ("self", "cls")
                and self.fn is not None
                and self.fn.class_qname is not None
            ):
                a._join(a.attr, (self.fn.class_qname, target.attr), taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                # Taint of an unpacked element is unknown; stay silent.
                self._bind_target(element, UNTRACKED, value)

    # -- expressions -------------------------------------------------------

    def taint_of(self, expr: ast.expr) -> int:
        a = self.analysis
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return self.env[expr.id]
            return a.modvar.get((self.module_qname, expr.id), UNTRACKED)
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                if self.fn is not None and self.fn.class_qname is not None:
                    summary = a.attr.get(
                        (self.fn.class_qname, expr.attr), None
                    )
                    if summary is not None:
                        return summary
                if expr.attr in REGISTRY_NAMES:
                    return REGISTRY
                if _is_rng_param(expr.attr):
                    return BLESSED
            return UNTRACKED
        if isinstance(expr, ast.Call):
            return self._taint_of_call(expr)
        if isinstance(expr, ast.IfExp):
            self.taint_of(expr.test)
            return max(self.taint_of(expr.body), self.taint_of(expr.orelse))
        if isinstance(expr, ast.BoolOp):
            return max(self.taint_of(v) for v in expr.values)
        if isinstance(expr, ast.NamedExpr):
            taint = self.taint_of(expr.value)
            if isinstance(expr.target, ast.Name) and self.fn is not None:
                self.env[expr.target.id] = taint
            return taint
        # Containers / arithmetic: evaluate nested calls, result untracked.
        for node in ast.iter_child_nodes(expr):
            if isinstance(node, ast.expr):
                self.taint_of(node)
        return UNTRACKED

    def _taint_of_call(self, call: ast.Call) -> int:
        a = self.analysis
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                self.taint_of(arg.value)
        # 1. Raw RNG constructors (TAINTED origin).
        target = self.module.resolve_call_target(call.func)
        in_registry = (
            self.fn is not None
            and self.fn.class_qname is not None
            and self.fn.class_qname.rsplit(".", 1)[-1] == REGISTRY_CLASS
        )
        if target in TAINTED_CONSTRUCTORS and not in_registry:
            self._evaluate_args(call)
            return TAINTED
        # 2. Registry constructor (REGISTRY origin).
        if target is not None and target.rsplit(".", 1)[-1] == REGISTRY_CLASS:
            self._evaluate_args(call)
            self._bind_call_site(call)
            return REGISTRY
        if (
            isinstance(call.func, ast.Name)
            and call.func.id == REGISTRY_CLASS
        ):
            self._evaluate_args(call)
            self._bind_call_site(call)
            return REGISTRY
        # 3. Method call on a taint-carrying receiver.
        if isinstance(call.func, ast.Attribute):
            receiver = self.taint_of(call.func.value)
            method = call.func.attr
            if receiver == TAINTED:
                a.flag(
                    self.module,
                    call,
                    f"draw {method!r} on an RNG with unseeded provenance",
                )
                self._evaluate_args(call)
                return TAINTED if method == "spawn" else UNTRACKED
            if receiver == REGISTRY:
                self._evaluate_args(call)
                if method in BLESSING_METHODS:
                    return BLESSED
                if method == "spawn":
                    return REGISTRY
                return UNTRACKED
            if receiver == BLESSED and method == "spawn":
                self._evaluate_args(call)
                return BLESSED
        # 4. Invoked callback parameter: result joins bound functions.
        if (
            isinstance(call.func, ast.Name)
            and self.fn is not None
            and call.func.id in self.fn.invoked_params
        ):
            bound = a.callbacks.get((self.fn.qname, call.func.id), set())
            self._evaluate_args(call)
            result = UNTRACKED
            for fn_qname in bound:
                result = max(result, a.ret.get(fn_qname, UNTRACKED))
            return result
        # 5. Resolved project call: bind args, use the return summary.
        site = self._bind_call_site(call)
        self._evaluate_args(call, bound=site is not None)
        if site is not None:
            callee = a.graph.functions.get(site.callee)
            if callee is not None:
                if site.kind == KIND_CONSTRUCTOR:
                    return UNTRACKED  # instance state lives in attr summaries
                return a.ret.get(callee.qname, UNTRACKED)
        return UNTRACKED

    def _evaluate_args(self, call: ast.Call, bound: bool = False) -> None:
        """Taint-evaluate arguments (for side effects on nested calls)."""
        if bound:
            return  # _bind_call_site already evaluated them
        for arg in call.args:
            value = arg.value if isinstance(arg, ast.Starred) else arg
            self.taint_of(value)
        for keyword in call.keywords:
            self.taint_of(keyword.value)

    def _bind_call_site(self, call: ast.Call) -> Optional[CallSite]:
        """Join argument taints into the callee's parameter summaries."""
        a = self.analysis
        site = a.site_by_node.get(id(call))
        if site is None:
            return None
        callee = a.graph.functions.get(site.callee)
        if callee is None:
            return None
        shift = 1 if site.kind == KIND_CONSTRUCTOR else 0
        params = list(callee.params)
        if shift and params and params[0] in ("self", "cls"):
            params = params[1:]
        elif not shift and site.kind == "method" and params:
            if params[0] in ("self", "cls"):
                params = params[1:]
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                self.taint_of(arg.value)
                continue
            taint = self.taint_of(arg)
            if index < len(params):
                self._bind_param(callee, params[index], taint, arg)
        for keyword in call.keywords:
            taint = self.taint_of(keyword.value)
            if keyword.arg is not None and keyword.arg in callee.params:
                self._bind_param(callee, keyword.arg, taint, keyword.value)
        return site

    def _bind_param(
        self,
        callee: FunctionInfo,
        param: str,
        taint: int,
        node: ast.expr,
    ) -> None:
        a = self.analysis
        if taint >= TAINTED and _is_rng_param(param):
            a.flag(
                self.module,
                node,
                f"unseeded RNG passed to parameter {param!r} of "
                f"{callee.qname} — provenance does not reach a "
                f"{REGISTRY_CLASS} substream",
            )
        a._join(a.param, (callee.qname, param), taint)


class RngProvenanceRule(ProjectRule):
    """R6: RNG values must trace back to the seed registry."""

    id = "R6"
    name = "rng-provenance"
    severity = SEVERITY_ERROR
    hint = (
        "derive RNGs from SeedSequenceRegistry substreams "
        "(seeds.python(name)/seeds.numpy(name)) or thread them through "
        "an explicit rng parameter"
    )

    def check_project(self, project: Project) -> List[Finding]:
        return _TaintAnalysis(project).run()
