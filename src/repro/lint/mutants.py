"""Seeded violations proving the interprocedural passes actually fire.

Same philosophy as ``repro.chaos.mutants``: a checker that has never
caught anything is indistinguishable from one that cannot.  Each
:class:`LintMutant` patches a copy of the shipped package with one
realistic determinism defect that the *per-call* rules (R1–R5) cannot
see, then asserts the matching interprocedural pass reports it in the
right file:

- ``rng-smuggled-through-helper`` (R6): a helper in ``sim/rng.py``
  returns a fresh ``random.Random()`` and the system wires it into the
  fault injector's ``rng`` parameter.  No call site constructs an RNG
  directly (R1 stays silent); only provenance tracking sees that the
  value reaching the blessed parameter never came from the registry.
- ``neutrality-guard-dropped`` (R7): ``FaultInjector.drop_gossip``
  loses its ``p > 0.0 and`` short-circuit, so a null plan draws from
  the RNG on every gossip delivery — runtime-bitwise-neutrality gone,
  caught structurally.
- ``fork-shared-result-cache`` (R8): the worker pool grows a
  module-level dict cache, the classic fork-boundary state leak.

``python -m repro.lint --self-test`` copies the package to a temp dir,
applies each mutant, lints, and checks the expected (rule, path) pair
appears; exit 0 only when all three are caught.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.lint.runner import LintReport, run_lint


@dataclass(frozen=True)
class LintMutant:
    """One seeded violation: patches + the finding that must appear."""

    name: str
    rule: str
    description: str
    #: path (relative to the package root) the finding must land in.
    expect_path: str
    #: (relative path, exact-once old text, new text) patches.
    patches: Tuple[Tuple[str, str, str], ...]


MUTANTS: Tuple[LintMutant, ...] = (
    LintMutant(
        name="rng-smuggled-through-helper",
        rule="R6",
        description=(
            "fault injector fed an ambient random.Random() through an "
            "innocuous-looking helper instead of the faults substream"
        ),
        expect_path="core/system.py",
        patches=(
            (
                "sim/rng.py",
                "def exponential(rng: random.Random, rate: float) -> float:",
                "def ambient_entropy() -> random.Random:\n"
                '    """A fresh, unseeded stream (the defect under test)."""\n'
                "    return random.Random()\n"
                "\n"
                "\n"
                "def exponential(rng: random.Random, rate: float) -> float:",
            ),
            (
                "core/system.py",
                "from repro.sim.rng import SeedSequenceRegistry, exponential",
                "from repro.sim.rng import (\n"
                "    SeedSequenceRegistry,\n"
                "    ambient_entropy,\n"
                "    exponential,\n"
                ")",
            ),
            (
                "core/system.py",
                '                rng=self.seeds.python("faults"),',
                "                rng=ambient_entropy(),",
            ),
        ),
    ),
    LintMutant(
        name="neutrality-guard-dropped",
        rule="R7",
        description=(
            "drop_gossip loses its zero-knob short-circuit and draws "
            "from the RNG even under a null FaultPlan"
        ),
        expect_path="faults/injector.py",
        patches=(
            (
                "faults/injector.py",
                "        p = self.plan.gossip_loss_rate\n"
                "        return p > 0.0 and self._rng.random() < p",
                "        return self._rng.random() < self.plan.gossip_loss_rate",
            ),
        ),
    ),
    LintMutant(
        name="fork-shared-result-cache",
        rule="R8",
        description=(
            "worker pool memoizes results in a module-level dict that "
            "silently forks into every worker"
        ),
        expect_path="runner/pool.py",
        patches=(
            (
                "runner/pool.py",
                "_JOIN_GRACE = 2.0",
                "_JOIN_GRACE = 2.0\n\n"
                "# memoized task results (the defect under test)\n"
                "_RESULT_CACHE: Dict[str, Any] = {}",
            ),
        ),
    ),
)


def apply_mutant(package_dir: Path, mutant: LintMutant) -> None:
    """Patch *package_dir* in place; each old text must occur exactly once."""
    for relpath, old, new in mutant.patches:
        target = package_dir / relpath
        text = target.read_text(encoding="utf-8")
        count = text.count(old)
        if count != 1:
            raise RuntimeError(
                f"mutant {mutant.name}: anchor occurs {count} times in "
                f"{relpath} (need exactly 1) — shipped code drifted"
            )
        target.write_text(text.replace(old, new), encoding="utf-8")


def _finding_matches(report: LintReport, mutant: LintMutant) -> bool:
    for finding in report.findings:
        if finding.rule == mutant.rule and finding.path.endswith(
            mutant.expect_path
        ):
            return True
    return False


def run_self_test(
    package_dir: Optional[Path] = None,
    names: Optional[Sequence[str]] = None,
    verbose: bool = True,
) -> int:
    """Apply each mutant to a package copy and assert detection.

    Returns 0 when every selected mutant is caught by its intended rule
    in its expected file, 1 otherwise.
    """
    if package_dir is None:
        package_dir = Path(__file__).resolve().parent.parent
    selected = [
        mutant
        for mutant in MUTANTS
        if names is None or mutant.name in names
    ]
    if names is not None:
        unknown = set(names) - {mutant.name for mutant in selected}
        if unknown:
            print(
                f"repro lint --self-test: unknown mutant(s): "
                f"{', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
    failures: List[str] = []
    for mutant in selected:
        workdir = Path(tempfile.mkdtemp(prefix="repro-lint-selftest-"))
        try:
            copy = workdir / "repro"
            shutil.copytree(
                package_dir,
                copy,
                ignore=shutil.ignore_patterns("__pycache__"),
            )
            apply_mutant(copy, mutant)
            report = run_lint([copy], root=workdir)
            caught = _finding_matches(report, mutant)
            clean_of_noise = not report.problems
            if caught and clean_of_noise:
                if verbose:
                    print(
                        f"self-test PASS {mutant.name}: {mutant.rule} "
                        f"fired in {mutant.expect_path}"
                    )
            else:
                failures.append(mutant.name)
                if verbose:
                    reason = (
                        "waiver/parse problems during scan"
                        if caught
                        else f"{mutant.rule} did not fire in "
                        f"{mutant.expect_path}"
                    )
                    print(f"self-test FAIL {mutant.name}: {reason}")
                    for finding in report.findings + report.problems:
                        print(f"  {finding.render()}")
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    if verbose:
        print(
            f"self-test: {len(selected) - len(failures)}/{len(selected)} "
            "seeded violations detected"
        )
    return 1 if failures else 0
