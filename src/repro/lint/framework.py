"""Rule framework: findings, waivers, parsed modules, and the Rule base.

Every rule is an :class:`ast.NodeVisitor` subclass with a stable ``id``
(``R1``..), a severity, and a fix hint.  Rules see one
:class:`SourceModule` at a time — the parsed AST plus the module's import
alias tables, so rules can resolve dotted call targets
(``np.random.default_rng`` -> ``numpy.random.default_rng``) without
importing anything.

Waivers are inline comments of the form::

    offending_code()  # lint: ok(R4): integer counts, exact

The justification after the colon is mandatory; an unjustified waiver (or
one naming an unknown rule) is itself reported under the ``W0`` pseudo-rule.
A waiver written on its own comment line covers the next source line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar, Dict, List, Optional, Tuple

#: Bumped whenever rule semantics change; invalidates the on-disk cache.
LINT_VERSION = 2

#: Matches one waiver comment; justification (group "why") may be absent.
WAIVER_RE = re.compile(
    r"#\s*lint:\s*ok\(\s*(?P<rule>[A-Za-z0-9_\-]+)\s*\)"
    r"(?:\s*:\s*(?P<why>[^#]*))?"
)

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Pseudo-rule ids used by the framework itself.
RULE_PARSE_ERROR = "E0"
RULE_BAD_WAIVER = "W0"


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, machine-readable and stable across runs."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    waived: bool = False
    justification: str = ""

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        out: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        if self.waived:
            out["waived"] = True
            out["justification"] = self.justification
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`as_dict` (used by the lint cache)."""
        return cls(
            rule=str(data["rule"]),
            severity=str(data["severity"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            message=str(data["message"]),
            hint=str(data.get("hint", "")),
            waived=bool(data.get("waived", False)),
            justification=str(data.get("justification", "")),
        )

    def render(self) -> str:
        """``path:line:col: RULE severity: message`` terminal line."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )
        if self.hint:
            text += f" [{self.hint}]"
        return text


@dataclass(frozen=True)
class Waiver:
    """One parsed ``# lint: ok(<rule>): <why>`` comment."""

    rule: str
    line: int
    justification: str


@dataclass
class SourceModule:
    """A parsed source file plus the lookup tables rules need."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: local alias -> dotted module name (``np`` -> ``numpy``).
    imports: Dict[str, str] = field(default_factory=dict)
    #: local name -> (module, attribute) for ``from m import a [as b]``.
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: source line (1-based) -> waivers covering findings on that line.
    waivers: Dict[int, List[Waiver]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, relpath: str, source: str) -> "SourceModule":
        """Parse *source*; raises :class:`SyntaxError` on broken files."""
        tree = ast.parse(source, filename=str(path))
        module = cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )
        module._collect_imports()
        module._collect_waivers()
        return module

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports are out of scope
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    def _collect_waivers(self) -> None:
        for number, text in enumerate(self.lines, start=1):
            for match in WAIVER_RE.finditer(text):
                waiver = Waiver(
                    rule=match.group("rule"),
                    line=number,
                    justification=(match.group("why") or "").strip(),
                )
                self.waivers.setdefault(number, []).append(waiver)
                if text.lstrip().startswith("#"):
                    # A standalone waiver comment covers the next line.
                    self.waivers.setdefault(number + 1, []).append(waiver)

    def waiver_for(self, rule: str, line: int) -> Optional[Waiver]:
        """The justified waiver covering *rule* on *line*, if any."""
        for waiver in self.waivers.get(line, ()):
            if waiver.rule == rule and waiver.justification:
                return waiver
        return None

    def resolve_call_target(self, func: ast.expr) -> Optional[str]:
        """Fully dotted name of a call target, through import aliases.

        ``np.random.default_rng`` with ``import numpy as np`` resolves to
        ``numpy.random.default_rng``; a name bound by
        ``from random import Random`` resolves to ``random.Random``.
        Returns None for targets not rooted in an imported module
        (locals, ``self.x``, builtins).
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        if node.id in self.imports:
            return ".".join([self.imports[node.id]] + parts)
        if not parts and node.id in self.from_imports:
            module, attr = self.from_imports[node.id]
            return f"{module}.{attr}"
        if parts and node.id in self.from_imports:
            module, attr = self.from_imports[node.id]
            return ".".join([module, attr] + parts)
        return None


class Rule(ast.NodeVisitor):
    """Base class: one determinism/invariant contract, checked per module.

    Subclasses set the class attributes and implement ``visit_*`` methods,
    calling :meth:`flag` for each violation.  A fresh instance state is
    established by :meth:`check`, so one Rule object can scan many modules.
    """

    id: ClassVar[str] = "R0"
    name: ClassVar[str] = "abstract-rule"
    severity: ClassVar[str] = SEVERITY_ERROR
    hint: ClassVar[str] = ""

    def __init__(self) -> None:
        self.module: Optional[SourceModule] = None
        self.findings: List[Finding] = []

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule scans the file at *relpath* (posix-style)."""
        return True

    def check(self, module: SourceModule) -> List[Finding]:
        """Scan one module; returns raw findings (waivers applied later)."""
        self.module = module
        self.findings = []
        self.visit(module.tree)
        return self.findings

    def flag(self, node: ast.AST, message: str, hint: Optional[str] = None) -> None:
        """Record one violation anchored at *node*."""
        assert self.module is not None
        self.findings.append(
            Finding(
                rule=self.id,
                severity=self.severity,
                path=self.module.relpath,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
                hint=self.hint if hint is None else hint,
            )
        )


class ProjectRule:
    """Base class for whole-tree (interprocedural) passes.

    Unlike :class:`Rule`, which sees one module at a time, a ProjectRule
    receives the whole :class:`~repro.lint.callgraph.Project` — every
    parsed module plus the lazily built call graph — and returns raw
    findings for the runner to waive/report.  Subclasses set the same
    class attributes as :class:`Rule` so reports and W0 validation treat
    both kinds uniformly.
    """

    id: ClassVar[str] = "P0"
    name: ClassVar[str] = "abstract-project-rule"
    severity: ClassVar[str] = SEVERITY_ERROR
    hint: ClassVar[str] = ""

    def check_project(self, project: Any) -> List[Finding]:
        """Scan the whole project; returns raw findings."""
        raise NotImplementedError

    def certified(self) -> List[str]:
        """Human-readable certificates proven by the last check, if any.

        Passes that *prove* properties (rather than merely hunt for
        violations) report what they proved here; the runner surfaces the
        list in the JSON report so CI can assert on it.
        """
        return []


def path_within(relpath: str, *fragments: str) -> bool:
    """True when posix *relpath* lies under any ``fragment`` directory.

    Matching is by path component (``core`` matches ``repro/core/x.py`` and
    ``core/x.py`` but not ``score/x.py``).
    """
    slashed = "/" + relpath.replace("\\", "/")
    return any(f"/{fragment.strip('/')}/" in slashed for fragment in fragments)


def path_endswith(relpath: str, suffix: str) -> bool:
    """True when posix *relpath* ends with the path *suffix*."""
    slashed = "/" + relpath.replace("\\", "/")
    return slashed.endswith("/" + suffix.lstrip("/"))
