"""R2 determinism-hazards: ordering must never depend on ambient state.

Scoped to the simulation hot paths (``core/``, ``sim/``, ``faults/``),
where event ordering feeds every downstream RNG draw.  Four hazards:

- iterating a ``set``/``frozenset`` — hash order varies across processes
  (string hashing is salted) and across element insertion histories;
- iterating ``dict.keys()``/``.items()`` views — insertion order is
  deterministic per run but couples event ordering to incidental mutation
  history; hot-path loops must impose an explicit ``sorted(...)`` order
  (or waive with the reason the order is provably immaterial);
- wall-clock reads (``time.time``, ``perf_counter``, ...) — simulation
  logic must consume virtual time only;
- ``id()`` used as a sort key — CPython addresses vary per process.
"""

from __future__ import annotations

import ast
from typing import ClassVar, List, Set, Tuple, Union

from repro.lint.framework import Finding, Rule, SourceModule, path_within

#: Wall-clock call targets banned in simulation logic.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


class DeterminismHazardRule(Rule):
    """Flag ordering hazards inside the simulation hot paths."""

    id: ClassVar[str] = "R2"
    name: ClassVar[str] = "determinism-hazards"
    hint: ClassVar[str] = (
        "impose an explicit order with sorted(...), or use virtual "
        "simulation time instead of the wall clock"
    )

    SCOPES: ClassVar[Tuple[str, ...]] = ("core", "sim", "faults")

    def __init__(self) -> None:
        super().__init__()
        self._set_names: List[Set[str]] = [set()]

    def applies_to(self, relpath: str) -> bool:
        return path_within(relpath, *self.SCOPES)

    def check(self, module: SourceModule) -> List[Finding]:
        self._set_names = [set()]
        return super().check(module)

    # -- scope tracking for names bound to set-valued expressions ------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def _visit_scope(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        self._set_names.append(set())
        self.generic_visit(node)
        self._set_names.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_names[-1].add(target.id)
        self.generic_visit(node)

    def _is_set_name(self, name: str) -> bool:
        return any(name in scope for scope in self._set_names)

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            return True
        if isinstance(node, ast.Name) and self._is_set_name(node.id):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    # -- hazards --------------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.expr) -> None:
        for generator in getattr(node, "generators", ()):
            self._check_iterable(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def _check_iterable(self, iterable: ast.expr) -> None:
        if self._is_set_expr(iterable):
            self.flag(
                iterable,
                "iteration over a set in a hot path: hash order is not a "
                "stable order",
            )
        elif (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr in ("keys", "items")
            and not iterable.args
            and not iterable.keywords
        ):
            self.flag(
                iterable,
                f"iteration over dict .{iterable.func.attr}() in a hot path "
                "couples event order to insertion history; wrap in sorted(...)",
            )

    def visit_Call(self, node: ast.Call) -> None:
        assert self.module is not None
        target = self.module.resolve_call_target(node.func)
        if target in WALL_CLOCK_CALLS:
            self.flag(
                node,
                f"wall-clock read {target}() in simulation logic; use the "
                "simulator's virtual clock",
            )
        self._check_id_ordering(node)
        self.generic_visit(node)

    def _check_id_ordering(self, node: ast.Call) -> None:
        is_sorted = isinstance(node.func, ast.Name) and node.func.id == "sorted"
        is_sort = (
            isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
        )
        if not (is_sorted or is_sort):
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            for sub in ast.walk(keyword.value):
                if isinstance(sub, ast.Name) and sub.id == "id":
                    self.flag(
                        node,
                        "id() used as a sort key: CPython addresses are not "
                        "reproducible across processes",
                    )
                    return
