"""R3 trace-kinds: every emitted event kind is declared in the registry.

``sim/trace.py`` owns the single ``TRACE_KINDS`` registry of event kinds.
A typo'd kind at an emission site (``tracer.record(now, "gosip")``) would
produce events that no filter, counter comparison, or downstream analysis
ever matches — silently.  This rule resolves the ``kind`` argument of every
``*tracer*.record(...)`` call statically:

- string literals must appear in ``TRACE_KINDS``;
- names must be ``KIND_*`` constants imported from the trace module (their
  literal values are read from ``sim/trace.py``'s AST — nothing is
  imported) and registered;
- anything else (a computed kind) defeats static checking and is flagged.

The registry file itself is audited too: a ``KIND_*`` constant missing
from ``TRACE_KINDS`` is registry drift.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, List, Optional

from repro.lint.framework import Finding, Rule, SourceModule, path_endswith

#: Path suffix identifying the registry module.
TRACE_MODULE_SUFFIX = "sim/trace.py"


def _assigned_name(node: ast.stmt) -> Optional[ast.Name]:
    """The single Name target of a (possibly annotated) assignment."""
    if (
        isinstance(node, ast.Assign)
        and len(node.targets) == 1
        and isinstance(node.targets[0], ast.Name)
    ):
        return node.targets[0]
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        return node.target
    return None


def _assigned_value(node: ast.stmt) -> Optional[ast.expr]:
    if isinstance(node, (ast.Assign, ast.AnnAssign)):
        return node.value
    return None


def extract_trace_constants(module: SourceModule) -> Dict[str, str]:
    """Top-level ``NAME = "literal"`` string constants of the trace module."""
    constants: Dict[str, str] = {}
    for node in module.tree.body:
        name = _assigned_name(node)
        value = _assigned_value(node)
        if (
            name is not None
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            constants[name.id] = value.value
    return constants


def extract_trace_registry(module: SourceModule) -> Optional[Dict[str, str]]:
    """The ``TRACE_KINDS`` mapping of *module*, resolved statically.

    Keys may be string literals or names of string constants assigned
    earlier in the module.  Returns None when no registry is declared.
    """
    constants = extract_trace_constants(module)
    for node in module.tree.body:
        name = _assigned_name(node)
        mapping = _assigned_value(node)
        if not (
            name is not None
            and name.id == "TRACE_KINDS"
            and isinstance(mapping, ast.Dict)
        ):
            continue
        registry: Dict[str, str] = {}
        for key, value in zip(mapping.keys, mapping.values):
            kind: Optional[str] = None
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                kind = key.value
            elif isinstance(key, ast.Name) and key.id in constants:
                kind = constants[key.id]
            if kind is not None:
                description = ""
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    description = value.value
                registry[kind] = description
        return registry
    return None


class TraceKindRule(Rule):
    """Flag trace emissions whose kind is absent from ``TRACE_KINDS``."""

    id: ClassVar[str] = "R3"
    name: ClassVar[str] = "trace-kinds"
    hint: ClassVar[str] = (
        "declare the kind in TRACE_KINDS in sim/trace.py and emit it via "
        "its KIND_* constant"
    )

    def __init__(
        self,
        registry: Optional[Dict[str, str]] = None,
        constants: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__()
        #: kind value -> description; None until a trace module is seen.
        self.registry = registry
        #: constant name -> kind value, from the trace module.
        self.constants = constants if constants is not None else {}

    def learn_registry(self, trace_module: SourceModule) -> None:
        """Load the registry and constants from a parsed trace module."""
        registry = extract_trace_registry(trace_module)
        if registry is not None:
            self.registry = registry
        self.constants = extract_trace_constants(trace_module)

    def check(self, module: SourceModule) -> List[Finding]:
        if path_endswith(module.relpath, TRACE_MODULE_SUFFIX):
            return self._check_registry_module(module)
        return super().check(module)

    def _check_registry_module(self, module: SourceModule) -> List[Finding]:
        """Audit the registry file itself for drift."""
        self.module = module
        self.findings = []
        registry = extract_trace_registry(module)
        if registry is None:
            self.flag(
                module.tree,
                "trace module declares no TRACE_KINDS registry",
                hint="add TRACE_KINDS: Dict[str, str] mapping kind -> purpose",
            )
            return self.findings
        for node in module.tree.body:
            name = _assigned_name(node)
            value = _assigned_value(node)
            if (
                name is not None
                and name.id.startswith("KIND_")
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
                and value.value not in registry
            ):
                self.flag(
                    node,
                    f"kind constant {name.id} = "
                    f"{value.value!r} is not declared in TRACE_KINDS",
                )
        return self.findings

    # -- emission sites --------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_trace_record(node):
            self._check_kind_argument(node)
        self.generic_visit(node)

    @staticmethod
    def _is_trace_record(node: ast.Call) -> bool:
        if not (
            isinstance(node.func, ast.Attribute) and node.func.attr == "record"
        ):
            return False
        receiver = node.func.value
        terminal = ""
        if isinstance(receiver, ast.Name):
            terminal = receiver.id
        elif isinstance(receiver, ast.Attribute):
            terminal = receiver.attr
        return "tracer" in terminal.lower()

    def _check_kind_argument(self, node: ast.Call) -> None:
        if self.registry is None:
            return  # no registry discovered; nothing to check against
        kind_node: Optional[ast.expr] = None
        if len(node.args) >= 2:
            kind_node = node.args[1]
        else:
            for keyword in node.keywords:
                if keyword.arg == "kind":
                    kind_node = keyword.value
                    break
        if kind_node is None:
            return
        if isinstance(kind_node, ast.Constant) and isinstance(
            kind_node.value, str
        ):
            if kind_node.value not in self.registry:
                self.flag(
                    kind_node,
                    f"trace kind {kind_node.value!r} is not declared in "
                    "TRACE_KINDS",
                )
            return
        if isinstance(kind_node, ast.Name):
            assert self.module is not None
            origin = self.module.from_imports.get(kind_node.id)
            constant_name = kind_node.id
            if origin is not None and not origin[0].endswith("trace"):
                self.flag(
                    kind_node,
                    f"trace kind name {constant_name!r} is not imported from "
                    "the trace module",
                )
                return
            value = self.constants.get(constant_name)
            if value is None:
                self.flag(
                    kind_node,
                    f"trace kind constant {constant_name!r} is not defined in "
                    "the trace module",
                )
            elif value not in self.registry:
                self.flag(
                    kind_node,
                    f"trace kind constant {constant_name!r} = {value!r} is "
                    "not declared in TRACE_KINDS",
                )
            return
        self.flag(
            kind_node,
            "trace kind must be a string literal or a KIND_* constant so it "
            "can be checked statically",
        )
