"""R4 float-accumulation and R5 gf256-misuse: numeric-integrity rules.

**R4** — ``sum()`` over floats accumulates rounding error left-to-right,
so two refactorings that merely reorder an iterable produce different
metric values and break byte-identical regression comparisons.  In the
metric/analysis paths (``analysis/``, ``sim/metrics.py``) simulation-time
floats must be accumulated with ``math.fsum`` (exact round-to-nearest).
Integer accumulations are fine — waive them with the reason::

    total = sum(self.peer_degree)  # lint: ok(R4): integer edge counts, exact

**R5** — GF(2^8) vectors are ``uint8`` numpy arrays, so Python's ``+``,
``*``, ``**`` and even ``^`` happily produce *numerically valid but
field-theoretically wrong* results (``+`` wraps mod 256 instead of XOR;
``*`` is integer product, not table lookup).  Any native arithmetic on an
object whose name marks it as field data (``coeff*``, ``gf256*``) in the
coding/protocol layers must go through :mod:`repro.coding.gf256`.
"""

from __future__ import annotations

import ast
import re
from typing import ClassVar, Optional, Tuple, Type

from repro.lint.framework import Rule, path_endswith, path_within


class FloatAccumulationRule(Rule):
    """Flag bare ``sum()`` in metric/analysis paths."""

    id: ClassVar[str] = "R4"
    name: ClassVar[str] = "float-accumulation"
    hint: ClassVar[str] = (
        "use math.fsum(...) for float accumulation, or waive with "
        "# lint: ok(R4): <why> when the operands are exact"
    )

    SCOPES: ClassVar[Tuple[str, ...]] = ("analysis",)
    FILES: ClassVar[Tuple[str, ...]] = ("sim/metrics.py",)

    def applies_to(self, relpath: str) -> bool:
        return path_within(relpath, *self.SCOPES) or any(
            path_endswith(relpath, name) for name in self.FILES
        )

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "sum":
            self.flag(
                node,
                "bare sum() accumulates float rounding error order-"
                "dependently in a metrics path",
            )
        self.generic_visit(node)


class Gf256MisuseRule(Rule):
    """Flag native Python arithmetic on GF(256)-named objects."""

    id: ClassVar[str] = "R5"
    name: ClassVar[str] = "gf256-misuse"
    hint: ClassVar[str] = (
        "use repro.coding.gf256 (add/mul/vec_add/vec_scale/vec_addmul) for "
        "field arithmetic"
    )

    SCOPES: ClassVar[Tuple[str, ...]] = ("coding", "core")
    #: The field implementation itself is the one place XOR *is* field math.
    EXEMPT_FILES: ClassVar[Tuple[str, ...]] = ("coding/gf256.py",)

    #: Identifiers that mark a value as GF(256) field data.
    GF_NAME = re.compile(r"(^|_)(gf256|gf|coeff\w*)($|_)", re.IGNORECASE)

    FORBIDDEN_OPS: ClassVar[Tuple[Type[ast.AST], ...]] = (
        ast.Add,
        ast.Mult,
        ast.Pow,
        ast.BitXor,
    )

    def applies_to(self, relpath: str) -> bool:
        if any(path_endswith(relpath, name) for name in self.EXEMPT_FILES):
            return False
        return path_within(relpath, *self.SCOPES)

    def _gf_operand(self, node: ast.expr) -> Optional[str]:
        """The GF-marked identifier of *node*, if it names field data."""
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Subscript):
            return self._gf_operand(node.value)
        if name is not None and self.GF_NAME.search(name):
            return name
        return None

    def _op_symbol(self, op: ast.operator) -> str:
        return {
            ast.Add: "+",
            ast.Mult: "*",
            ast.Pow: "**",
            ast.BitXor: "^",
        }.get(type(op), type(op).__name__)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, self.FORBIDDEN_OPS):
            name = self._gf_operand(node.left) or self._gf_operand(node.right)
            if name is not None:
                self.flag(
                    node,
                    f"native {self._op_symbol(node.op)!r} on GF(256) data "
                    f"({name!r}) is integer arithmetic, not field arithmetic",
                )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, self.FORBIDDEN_OPS):
            name = self._gf_operand(node.target) or self._gf_operand(node.value)
            if name is not None:
                self.flag(
                    node,
                    f"native {self._op_symbol(node.op)!r}= on GF(256) data "
                    f"({name!r}) is integer arithmetic, not field arithmetic",
                )
        self.generic_visit(node)
