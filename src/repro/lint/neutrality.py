"""R7: static null-plan neutrality proofs for the hook surfaces.

PR 5/6 established *runtime* bitwise neutrality: a system built with a
null :class:`FaultPlan`/:class:`AdversaryPlan` (or no monitors attached)
replays the exact event sequence of a system built with none at all.
R7 turns that into a *structural* contract checked on every lint run: it
walks the hook-surface methods under the null-plan hypothesis — every
plan knob falsy, every role set empty, the probe hook ``None`` — with an
abstract interpreter that prunes decidable branches, and proves each
method short-circuits before any expensive construct:

- ``rng-draw``: a call on an ``rng``/``_rng`` receiver, or any call fed
  an RNG-valued argument (``exponential(self._rng, ...)``);
- ``alloc``: comprehensions over non-empty iterables, non-empty
  list/dict/set displays, ``list``/``dict``/``set``/``sorted`` over
  non-empty arguments;
- ``trace-emit``: a call on a ``tracer``/``_tracer`` receiver;
- ``schedule``: a ``schedule*`` call on a ``sim``/``_sim`` receiver;
- ``hook-call``: invoking a value proven ``None`` under the hypothesis.

Each surface declares which op classes it must avoid — the simulator's
``run_until`` legitimately allocates (batch heap drains) but must never
invoke the probe hook when ``_probe is None``, while the injector
queries must avoid all five.  Surfaces are keyed by *class name*, not
path, so golden-fixture trees exercise the pass by reusing the names.

A method with no reachable expensive op is *certified*; the certificates
are surfaced through :meth:`NeutralityRule.certified` into the JSON
report, where CI asserts the faults/adversary/monitor surfaces stay
machine-checked.  Everything undecidable is walked conservatively: both
branches of an unknown ``if``, one iteration of an unknown loop — so a
certificate means "no path under the hypothesis reaches the op", while
an unknown value never *suppresses* a finding on code it guards.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.lint.callgraph import ClassInfo, Project
from repro.lint.framework import SEVERITY_ERROR, Finding, ProjectRule

# -- abstract values under the null-plan hypothesis ------------------------

V_NONE = "none"  # proven None
V_EMPTY = "empty"  # proven falsy: zero knob, empty role set, False
V_FALSY = "falsy"  # falsy, but None-ness unknown (join of none/empty)
V_TRUE = "true"  # proven truthy
V_PLAN = "plan"  # a null plan object: truthy, every attribute falsy
V_RNG = "rng"  # the dedicated RNG substream
V_SIM = "sim"  # the simulation engine
V_TRACER = "tracer"  # Optional[Tracer]: may be live even under null plan
V_UNKNOWN = "unknown"

#: Attribute/parameter names carrying infrastructure values regardless of
#: surface facts.
_INFRA_NAMES: Mapping[str, str] = {
    "rng": V_RNG,
    "_rng": V_RNG,
    "py_rng": V_RNG,
    "_py_rng": V_RNG,
    "np_rng": V_RNG,
    "_np_rng": V_RNG,
    "sim": V_SIM,
    "_sim": V_SIM,
    "tracer": V_TRACER,
    "_tracer": V_TRACER,
}

# -- expensive-op classes --------------------------------------------------

OP_RNG = "rng-draw"
OP_ALLOC = "alloc"
OP_TRACE = "trace-emit"
OP_SCHEDULE = "schedule"
OP_HOOK = "hook-call"

ALL_OPS = frozenset({OP_RNG, OP_ALLOC, OP_TRACE, OP_SCHEDULE, OP_HOOK})

_OP_DESCRIPTION = {
    OP_RNG: "an RNG draw",
    OP_ALLOC: "an allocation-heavy construct",
    OP_TRACE: "a trace emission",
    OP_SCHEDULE: "a scheduler call",
    OP_HOOK: "a hook invocation on a value that is None",
}


@dataclass(frozen=True)
class Surface:
    """One hook surface: a class, its hot methods, and its null facts."""

    class_name: str
    methods: FrozenSet[str]
    #: attribute name -> abstract value under the null-plan hypothesis.
    facts: Mapping[str, str]
    #: op classes this surface must short-circuit before.
    ops: FrozenSet[str] = ALL_OPS


#: The contract: the three hook surfaces PR 5/6 proved neutral at runtime.
SURFACES: Tuple[Surface, ...] = (
    Surface(
        class_name="FaultInjector",
        methods=frozenset(
            {
                "__init__",
                "_sample_polluters",
                "start",
                "stop",
                "drop_gossip",
                "drop_pull",
                "is_polluter",
                "pollutes",
                "maybe_pollute",
                "servers_down",
            }
        ),
        facts={"plan": V_PLAN, "polluters": V_EMPTY},
    ),
    Surface(
        # Never constructed under a null plan (the system guards every
        # hook on None), so __init__/_sample_roles are out of scope; the
        # queries must still short-circuit when every *strategy* is off.
        class_name="AdversaryInjector",
        methods=frozenset(
            {
                "start",
                "stop",
                "is_sybil",
                "suppress_gossip",
                "targets_low_degree",
                "pollutes_gossip",
                "serves_junk",
                "is_adversarial",
                "capture_pull",
            }
        ),
        facts={
            "plan": V_PLAN,
            "liars": V_EMPTY,
            "freeriders": V_EMPTY,
            "polluters": V_EMPTY,
            "_liar_list": V_EMPTY,
            "_sybils": V_EMPTY,
        },
    ),
    Surface(
        # Vectorized twin of FaultInjector (repro.fastsim.masks): the
        # batch queries must short-circuit on the plan knob before the
        # numpy draw, exactly like the scalar injector.  burst_slots is
        # out of scope — it only runs when a burst event fires, and the
        # burst channel's rate is 0 under a null plan.
        class_name="FastFaultMasks",
        methods=frozenset(
            {
                "__init__",
                "_sample_polluters",
                "gossip_loss_mask",
                "pull_loss_mask",
                "outage_timeline",
            }
        ),
        facts={"plan": V_PLAN, "polluters": V_EMPTY},
    ),
    Surface(
        # Vectorized twin of AdversaryInjector.  capture_mask guards on a
        # computed probability (0 when nobody advertises), which the
        # abstract interpreter cannot decide — runtime tests pin it; the
        # statically provable members are the role sampling and the
        # sizing arithmetic.
        class_name="FastAdversaryMasks",
        methods=frozenset(
            {
                "__init__",
                "_sample_roles",
                "targets_low_degree",
                "capture_probability",
                "sybil_burst_size",
            }
        ),
        facts={
            "plan": V_PLAN,
            "liars": V_EMPTY,
            "freeriders": V_EMPTY,
            "polluters": V_EMPTY,
        },
    ),
    Surface(
        # The engine's own batch allocations are the fast path itself;
        # the monitor contract is only that a detached probe is never
        # invoked.
        class_name="Simulator",
        methods=frozenset({"run_until"}),
        facts={"_probe": V_NONE},
        ops=frozenset({OP_HOOK}),
    ),
)


@dataclass
class _Summary:
    """Per-method result: neutral under null? what does it return?"""

    safe: bool = True
    ret: str = V_UNKNOWN
    violations: List[Tuple[ast.AST, str, str]] = field(default_factory=list)


def _join_values(a: str, b: str) -> str:
    if a == b:
        return a
    if {a, b} <= {V_NONE, V_EMPTY, V_FALSY}:
        return V_FALSY
    return V_UNKNOWN


def _decide(value: str) -> Optional[bool]:
    """Truthiness of an abstract value, when decidable."""
    if value in (V_NONE, V_EMPTY, V_FALSY):
        return False
    if value in (V_TRUE, V_PLAN, V_RNG, V_SIM):
        return True
    return None


class _MethodWalker:
    """Abstract interpretation of one method under the null hypothesis."""

    def __init__(
        self,
        surface: Surface,
        class_info: ClassInfo,
        summaries: Dict[str, _Summary],
        node: ast.AST,
    ) -> None:
        self.surface = surface
        self.class_info = class_info
        self.summaries = summaries
        self.node = node
        self.env: Dict[str, str] = {}
        self.returns: List[str] = []
        self.fell_through = False
        self.violations: List[Tuple[ast.AST, str, str]] = []
        self._seed_params()

    def _seed_params(self) -> None:
        args = getattr(self.node, "args")
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg in ("self", "cls"):
                continue
            if arg.arg == "plan":
                self.env[arg.arg] = V_PLAN
            elif arg.arg in _INFRA_NAMES:
                self.env[arg.arg] = _INFRA_NAMES[arg.arg]
            else:
                self.env[arg.arg] = V_UNKNOWN

    def run(self) -> _Summary:
        terminated = self.walk_body(getattr(self.node, "body"))
        if not terminated:
            self.returns.append(V_NONE)  # falling off the end returns None
        ret = V_UNKNOWN
        if self.returns:
            ret = self.returns[0]
            for value in self.returns[1:]:
                ret = _join_values(ret, value)
        return _Summary(
            safe=not self.violations, ret=ret, violations=self.violations
        )

    def _flag(self, node: ast.AST, op: str) -> None:
        if op in self.surface.ops:
            self.violations.append((node, op, _OP_DESCRIPTION[op]))

    # -- statements --------------------------------------------------------

    def walk_body(self, body: Sequence[ast.stmt]) -> bool:
        """Walk statements in order; True when every path terminates."""
        for stmt in body:
            if self.walk_statement(stmt):
                return True
        return False

    def walk_statement(self, stmt: ast.stmt) -> bool:
        """Walk one statement; True when it terminates the current path."""
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.returns.append(V_NONE)
            else:
                self.returns.append(self.eval(stmt.value))
            return True
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return True  # terminates this body; loops stay conservative
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
            return True
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, value)
            return False
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval(stmt.value))
            return False
        if isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = V_UNKNOWN
            return False
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
            return False
        if isinstance(stmt, ast.If):
            decision = self.decide_expr(stmt.test)
            if decision is True:
                return self.walk_body(stmt.body)
            if decision is False:
                return self.walk_body(stmt.orelse)
            then_ends = self.walk_body(stmt.body)
            else_ends = self.walk_body(stmt.orelse) if stmt.orelse else False
            return then_ends and else_ends
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self.eval(stmt.iter)
            if _decide(iterable) is False:
                return self.walk_body(stmt.orelse)
            self._bind(stmt.target, V_UNKNOWN)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
            return False
        if isinstance(stmt, ast.While):
            decision = self.decide_expr(stmt.test)
            if decision is False:
                return self.walk_body(stmt.orelse)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
            return False
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value)
            return self.walk_body(stmt.body)
        if isinstance(stmt, ast.Try):
            body_ends = self.walk_body(stmt.body)
            for handler in stmt.handlers:
                self.walk_body(handler.body)
            self.walk_body(stmt.orelse)
            finally_ends = self.walk_body(stmt.finalbody)
            return finally_ends or (body_ends and not stmt.handlers)
        if isinstance(stmt, (ast.Assert, ast.Delete)):
            for node in ast.walk(stmt):
                if isinstance(node, ast.expr) and not isinstance(
                    node, (ast.Name, ast.Constant)
                ):
                    pass
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self.eval(node)
            return False
        if isinstance(
            stmt,
            (
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
                ast.Pass,
                ast.Import,
                ast.ImportFrom,
                ast.Global,
                ast.Nonlocal,
            ),
        ):
            return False
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self.eval(node)
        return False

    def _bind(self, target: ast.expr, value: str) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, V_UNKNOWN)
        # attribute writes don't update surface facts: the facts describe
        # the *hypothesis* state, and the certified methods never violate
        # it (runtime neutrality tests pin that independently).

    # -- expressions -------------------------------------------------------

    def decide_expr(self, expr: ast.expr) -> Optional[bool]:
        """Truth value of a condition under the hypothesis, if decidable."""
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
            inner = self.decide_expr(expr.operand)
            return None if inner is None else not inner
        if isinstance(expr, ast.BoolOp):
            return self._decide_boolop(expr)
        if isinstance(expr, ast.Compare):
            decision = self._decide_compare(expr)
            if decision is not None:
                return decision
            self.eval(expr)
            return None
        return _decide(self.eval(expr))

    def _decide_boolop(self, expr: ast.BoolOp) -> Optional[bool]:
        is_and = isinstance(expr.op, ast.And)
        result: Optional[bool] = is_and  # neutral element
        for value in expr.values:
            decision = self.decide_expr(value)
            if is_and and decision is False:
                return False  # later operands never evaluate
            if not is_and and decision is True:
                return True
            if decision is None:
                result = None
        return result

    def _decide_compare(self, expr: ast.Compare) -> Optional[bool]:
        if len(expr.ops) != 1:
            return None
        op = expr.ops[0]
        left, right = expr.left, expr.comparators[0]
        if isinstance(op, (ast.Is, ast.IsNot)):
            value = None
            if _is_none_const(right):
                value = self.eval(left)
            elif _is_none_const(left):
                value = self.eval(right)
            if value == V_NONE:
                return isinstance(op, ast.Is)
            if value in (V_EMPTY, V_PLAN, V_RNG, V_SIM, V_TRUE):
                return isinstance(op, ast.IsNot)
            return None
        if isinstance(op, (ast.In, ast.NotIn)):
            container = self.eval(right)
            self.eval(left)
            if container == V_EMPTY:
                return isinstance(op, ast.NotIn)
            return None
        if isinstance(op, (ast.Gt, ast.GtE, ast.Lt, ast.LtE)):
            # A falsy knob compares as zero against a numeric literal 0.
            if _is_zero_const(right) and self.eval(left) == V_EMPTY:
                if isinstance(op, ast.Gt):
                    return False
                if isinstance(op, ast.GtE):
                    return True
                if isinstance(op, ast.Lt):
                    return False
                return True  # LtE
            if _is_zero_const(left) and self.eval(right) == V_EMPTY:
                if isinstance(op, ast.Lt):
                    return False
                if isinstance(op, ast.LtE):
                    return True
                if isinstance(op, ast.Gt):
                    return False
                return True  # GtE
        return None

    def eval(self, expr: ast.expr) -> str:
        if isinstance(expr, ast.Constant):
            if expr.value is None:
                return V_NONE
            if isinstance(expr.value, bool):
                return V_TRUE if expr.value else V_EMPTY
            if expr.value == 0 or expr.value == "" or expr.value == b"":
                return V_EMPTY
            return V_TRUE
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, V_UNKNOWN)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.BoolOp):
            decision = self._decide_boolop(expr)
            if decision is True:
                return V_TRUE
            if decision is False:
                return V_FALSY
            return V_UNKNOWN
        if isinstance(expr, ast.UnaryOp):
            if isinstance(expr.op, ast.Not):
                decision = self.decide_expr(expr.operand)
                if decision is None:
                    return V_UNKNOWN
                return V_TRUE if not decision else V_EMPTY
            self.eval(expr.operand)
            return V_UNKNOWN
        if isinstance(expr, ast.Compare):
            decision = self._decide_compare(expr)
            if decision is None:
                for sub in [expr.left] + expr.comparators:
                    self.eval(sub)
                return V_UNKNOWN
            return V_TRUE if decision else V_EMPTY
        if isinstance(expr, ast.IfExp):
            decision = self.decide_expr(expr.test)
            if decision is True:
                return self.eval(expr.body)
            if decision is False:
                return self.eval(expr.orelse)
            return _join_values(self.eval(expr.body), self.eval(expr.orelse))
        if isinstance(expr, (ast.List, ast.Set)):
            if expr.elts:
                self._flag(expr, OP_ALLOC)
                for element in expr.elts:
                    self.eval(element)
                return V_UNKNOWN
            return V_EMPTY
        if isinstance(expr, ast.Dict):
            if expr.keys:
                self._flag(expr, OP_ALLOC)
                for key in expr.keys:
                    if key is not None:
                        self.eval(key)
                for value in expr.values:
                    self.eval(value)
                return V_UNKNOWN
            return V_EMPTY
        if isinstance(expr, ast.Tuple):
            for element in expr.elts:
                self.eval(element)
            return V_EMPTY if not expr.elts else V_UNKNOWN
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp)):
            return self._eval_comprehension(expr)
        if isinstance(expr, ast.GeneratorExp):
            # Lazy: building the generator is cheap; consuming it is the
            # consumer's op (list()/sorted() over it flags there).
            return V_UNKNOWN
        if isinstance(expr, ast.Subscript):
            value = self.eval(expr.value)
            if not isinstance(expr.slice, ast.Slice):
                self.eval(expr.slice)
            return V_EMPTY if value == V_EMPTY else V_UNKNOWN
        if isinstance(expr, ast.NamedExpr):
            value = self.eval(expr.value)
            if isinstance(expr.target, ast.Name):
                self.env[expr.target.id] = value
            return value
        for node in ast.iter_child_nodes(expr):
            if isinstance(node, ast.expr):
                self.eval(node)
        return V_UNKNOWN

    def _eval_comprehension(self, expr: ast.expr) -> str:
        generators = getattr(expr, "generators")
        first = generators[0] if generators else None
        if first is not None and _decide(self.eval(first.iter)) is False:
            return V_EMPTY  # comprehension over nothing builds nothing
        self._flag(expr, OP_ALLOC)
        for generator in generators:
            self._bind(generator.target, V_UNKNOWN)
            for condition in generator.ifs:
                self.eval(condition)
        for sub in ast.iter_child_nodes(expr):
            if isinstance(sub, ast.expr):
                self.eval(sub)
        return V_UNKNOWN

    def _eval_attribute(self, expr: ast.Attribute) -> str:
        base = expr.value
        if isinstance(base, ast.Name) and base.id in ("self", "cls"):
            if expr.attr in self.surface.facts:
                return self.surface.facts[expr.attr]
            if expr.attr in _INFRA_NAMES:
                return _INFRA_NAMES[expr.attr]
            return V_UNKNOWN
        value = self.eval(base)
        if value == V_PLAN:
            return V_EMPTY  # every knob on a null plan is falsy
        return V_UNKNOWN

    def _eval_call(self, call: ast.Call) -> str:
        func = call.func
        # self.method(...): use the class summary.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and func.attr not in self.surface.facts
            and func.attr not in _INFRA_NAMES
        ):
            summary = self.summaries.get(func.attr)
            self._eval_args(call)
            if summary is not None:
                if not summary.safe:
                    self._flag(call, self._dominant_op(summary))
                return summary.ret
            return V_UNKNOWN
        if isinstance(func, ast.Attribute):
            receiver = self.eval(func.value)
            if receiver == V_RNG:
                self._flag(call, OP_RNG)
                self._eval_args(call)
                return V_UNKNOWN
            if receiver == V_TRACER:
                self._flag(call, OP_TRACE)
                self._eval_args(call)
                return V_UNKNOWN
            if receiver == V_SIM and func.attr.startswith("schedule"):
                self._flag(call, OP_SCHEDULE)
                self._eval_args(call)
                return V_UNKNOWN
            if receiver == V_NONE:
                self._flag(call, OP_HOOK)
                self._eval_args(call)
                return V_UNKNOWN
            if receiver == V_EMPTY and func.attr in (
                "items",
                "keys",
                "values",
                "copy",
            ):
                self._eval_args(call)
                return V_EMPTY
            self._eval_args(call)
            return V_UNKNOWN
        if isinstance(func, ast.Name):
            value = self.env.get(func.id)
            if value == V_NONE:
                self._flag(call, OP_HOOK)
                self._eval_args(call)
                return V_UNKNOWN
            arg_values = self._eval_args(call)
            if V_RNG in arg_values:
                # exponential(self._rng, rate) and friends draw from the
                # stream they are handed.
                self._flag(call, OP_RNG)
                return V_UNKNOWN
            if func.id in ("list", "dict", "set", "sorted", "frozenset"):
                if any(v not in (V_EMPTY, V_NONE, V_FALSY) for v in arg_values):
                    self._flag(call, OP_ALLOC)
                    return V_UNKNOWN
                return V_EMPTY
            if func.id == "bool" and len(arg_values) == 1:
                decision = _decide(arg_values[0])
                if decision is True:
                    return V_TRUE
                if decision is False:
                    return V_EMPTY
                return V_UNKNOWN
            if func.id == "len" and len(arg_values) == 1:
                return V_EMPTY if arg_values[0] == V_EMPTY else V_UNKNOWN
            return V_UNKNOWN
        self.eval(func)
        self._eval_args(call)
        return V_UNKNOWN

    def _eval_args(self, call: ast.Call) -> List[str]:
        values: List[str] = []
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                values.append(self.eval(arg.value))
            else:
                values.append(self.eval(arg))
        for keyword in call.keywords:
            values.append(self.eval(keyword.value))
        return values

    @staticmethod
    def _dominant_op(summary: _Summary) -> str:
        return summary.violations[0][1] if summary.violations else OP_HOOK


def _is_none_const(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Constant) and expr.value is None


def _is_zero_const(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Constant)
        and not isinstance(expr.value, bool)
        and isinstance(expr.value, (int, float))
        and expr.value == 0
    )


class NeutralityRule(ProjectRule):
    """R7: hook surfaces must short-circuit under a null plan."""

    id = "R7"
    name = "null-plan-neutrality"
    severity = SEVERITY_ERROR
    hint = (
        "keep the zero-knob short-circuit ahead of RNG, allocation, "
        "trace and schedule work (docs/LINTING.md, R7)"
    )

    def __init__(self) -> None:
        self._certified: List[str] = []

    def check_project(self, project: Project) -> List[Finding]:
        self._certified = []
        findings: List[Finding] = []
        graph = project.graph
        for surface in SURFACES:
            for class_info in graph.classes_by_name.get(
                surface.class_name, []
            ):
                findings.extend(self._check_class(surface, class_info))
        return findings

    def _check_class(
        self, surface: Surface, class_info: ClassInfo
    ) -> List[Finding]:
        method_nodes: Dict[str, ast.AST] = {}
        for stmt in class_info.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_nodes[stmt.name] = stmt
        summaries: Dict[str, _Summary] = {
            name: _Summary() for name in method_nodes
        }
        for _ in range(10):
            changed = False
            for name, node in sorted(method_nodes.items()):
                walker = _MethodWalker(surface, class_info, summaries, node)
                summary = walker.run()
                old = summaries[name]
                # once unsafe, stay unsafe (monotone convergence)
                summary.safe = summary.safe and old.safe
                if not summary.violations and old.violations:
                    summary.violations = old.violations
                if (summary.safe, summary.ret) != (old.safe, old.ret):
                    changed = True
                summaries[name] = summary
            if not changed:
                break
        findings: List[Finding] = []
        clean = True
        for name in sorted(surface.methods):
            if name not in method_nodes:
                continue  # surface method absent in this tree: nothing to prove
            summary = summaries[name]
            if summary.safe:
                continue
            clean = False
            for node, op, description in summary.violations:
                findings.append(
                    Finding(
                        rule=self.id,
                        severity=self.severity,
                        path=class_info.module.relpath,
                        line=getattr(node, "lineno", 1),
                        col=getattr(node, "col_offset", 0),
                        message=(
                            f"{surface.class_name}.{name} reaches "
                            f"{description} under a null plan"
                        ),
                        hint=self.hint,
                    )
                )
        if clean:
            for name in sorted(surface.methods):
                if name in method_nodes:
                    self._certified.append(
                        f"{surface.class_name}.{name}: neutral under null plan"
                    )
        return findings

    def certified(self) -> List[str]:
        return list(self._certified)
