"""Global segment registry: network degree, server state, lifecycle.

Sec. 3 views the session as a bipartite graph between segments and peers and
attaches to every segment a *state* ``j`` — the number of linearly
independent blocks the servers have collected (0..s).  The registry is the
authoritative owner of that view:

- ``network_degree`` — live blocks of the segment anywhere in the network
  (the segment's degree in graph G),
- ``collected`` — the server state ``j`` (abstract mode) or the rank of the
  pooled server decoder (RLNC mode),
- lifecycle accounting — completion (state reaches ``s``: decodable at the
  servers) and extinction (degree reaches 0: if still incomplete, the data
  is permanently lost, the failure mode the whole design fights).

Every degree/state transition is pushed into the metrics collector so the
"decodable" and "saved for future delivery" populations (Theorem 4 / Fig. 6)
are integrated exactly over time.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.coding.block import CodedBlock, SegmentDescriptor
from repro.coding.rlnc import SegmentDecoder
from repro.sim.metrics import MetricsCollector


class SegmentState:
    """Registry entry for one live (or completed-but-circulating) segment."""

    __slots__ = (
        "descriptor",
        "network_degree",
        "collected",
        "decoder",
        "completed_at",
        "_counted_decodable",
        "_counted_saved",
    )

    def __init__(
        self, descriptor: SegmentDescriptor, use_decoder: bool = False
    ) -> None:
        self.descriptor = descriptor
        self.network_degree = 0
        self.collected = 0
        self.decoder: Optional[SegmentDecoder] = (
            SegmentDecoder(descriptor) if use_decoder else None
        )
        self.completed_at: Optional[float] = None
        self._counted_decodable = False
        self._counted_saved = False

    @property
    def segment_id(self) -> int:
        return self.descriptor.segment_id

    @property
    def size(self) -> int:
        return self.descriptor.size

    @property
    def is_complete(self) -> bool:
        """True once the servers hold ``s`` independent blocks."""
        return self.collected >= self.size

    @property
    def is_network_decodable(self) -> bool:
        """Degree-based decodability (Theorem 4's Σ_{i≥s} X_i population)."""
        return self.network_degree >= self.size

    def __repr__(self) -> str:
        return (
            f"SegmentState(id={self.segment_id}, degree={self.network_degree}, "
            f"collected={self.collected}/{self.size})"
        )


class SegmentRegistry:
    """All segments currently known to the session, with exact accounting."""

    def __init__(self, metrics: MetricsCollector, use_decoders: bool) -> None:
        self._metrics = metrics
        self._use_decoders = use_decoders
        self._segments: Dict[int, SegmentState] = {}
        self._next_id = 0
        #: optional hook fired exactly once when a segment completes, while
        #: its decoder (and thus its payload) is still reachable.
        self.on_complete: Optional[Callable[[SegmentState], None]] = None
        #: optional hook fired on every innovative server pull (per-source
        #: intake accounting for the postmortem experiments).
        self.on_useful_pull: Optional[Callable[[SegmentState], None]] = None
        #: optional hook fired when a segment goes extinct while incomplete
        #: (permanent data loss) — used by tracing and loss forensics.
        self.on_lost: Optional[Callable[[SegmentState], None]] = None
        #: permanently lost segments (extinct while incomplete) — ids only,
        #: kept for postmortem accounting in examples.
        self.lost_segment_ids: List[int] = []
        #: completed segments that have also left the network (safe history).
        self.completed_count = 0

    def __len__(self) -> int:
        return len(self._segments)

    def __contains__(self, segment_id: int) -> bool:
        return segment_id in self._segments

    def get(self, segment_id: int) -> SegmentState:
        """Look up a live segment; raises KeyError for unknown/expired ids."""
        return self._segments[segment_id]

    def live_states(self) -> Iterable[SegmentState]:
        """All segments currently holding blocks in the network."""
        return self._segments.values()

    def create(
        self,
        source_peer: int,
        size: int,
        now: float,
        generation: int = 0,
    ) -> SegmentState:
        """Register a newly injected segment and return its state."""
        descriptor = SegmentDescriptor(
            segment_id=self._next_id,
            source_peer=source_peer,
            size=size,
            injected_at=now,
            generation=generation,
        )
        self._next_id += 1
        state = SegmentState(descriptor, use_decoder=self._use_decoders)
        self._segments[descriptor.segment_id] = state
        return state

    # -- degree transitions ---------------------------------------------------

    def on_block_added(self, state: SegmentState, now: float) -> None:
        """One live block of the segment appeared somewhere in the network."""
        state.network_degree += 1
        self._refresh_populations(state, now)

    def on_block_removed(self, state: SegmentState, now: float) -> None:
        """One live block disappeared (TTL expiry or churn loss)."""
        if state.network_degree <= 0:
            raise RuntimeError(
                f"degree underflow for segment {state.segment_id}"
            )
        state.network_degree -= 1
        self._refresh_populations(state, now)
        if state.network_degree == 0:
            self._extinguish(state, now)

    # -- server-state transitions ----------------------------------------------

    def on_server_block(
        self, state: SegmentState, now: float, block: Optional[CodedBlock] = None
    ) -> bool:
        """The servers pulled one coded block of this segment.

        Returns True iff the block was innovative to the pooled server state.
        In abstract mode this follows the paper's rule exactly: the state
        increments whenever it is below ``s``.  In RLNC mode the pooled
        decoder decides.
        """
        if state.is_complete:
            return False
        if state.decoder is not None:
            if block is None:
                raise ValueError("RLNC-mode registry requires the pulled block")
            innovative = state.decoder.offer(block, now)
            state.collected = state.decoder.rank
        else:
            state.collected += 1
            innovative = True
        if innovative and self.on_useful_pull is not None:
            self.on_useful_pull(state)
        if state.is_complete and state.completed_at is None:
            state.completed_at = now
            self._metrics.on_segment_completed(
                now, state.descriptor.injected_at, state.size
            )
            self.completed_count += 1
            self._refresh_populations(state, now)
            if self.on_complete is not None:
                self.on_complete(state)
        return innovative

    # -- internals --------------------------------------------------------------

    def _refresh_populations(self, state: SegmentState, now: float) -> None:
        decodable = state.is_network_decodable
        if decodable != state._counted_decodable:
            self._metrics.decodable_segments.add(now, 1 if decodable else -1)
            state._counted_decodable = decodable
        saved = decodable and not state.is_complete
        if saved != state._counted_saved:
            self._metrics.saved_segments.add(now, 1 if saved else -1)
            state._counted_saved = saved

    def _extinguish(self, state: SegmentState, now: float) -> None:
        """Degree hit zero: the segment can never gain blocks again."""
        if not state.is_complete:
            self._metrics.segments_lost.increment(self._metrics.in_window)
            self.lost_segment_ids.append(state.segment_id)
            if self.on_lost is not None:
                self.on_lost(state)
        # Population flags are already false (degree 0 < s); drop the entry
        # so long sessions do not accumulate dead state.
        del self._segments[state.segment_id]

    # -- diagnostics --------------------------------------------------------------

    def degree_histogram(self) -> Dict[int, int]:
        """Map degree i -> number of live segments of that degree (X_i)."""
        histogram: Dict[int, int] = {}
        for state in self._segments.values():
            histogram[state.network_degree] = (
                histogram.get(state.network_degree, 0) + 1
            )
        return histogram

    def collection_matrix(self) -> Dict[int, Dict[int, int]]:
        """Map degree i -> {state j -> count} (the M_i^j matrix of Sec. 3)."""
        matrix: Dict[int, Dict[int, int]] = {}
        for state in self._segments.values():
            row = matrix.setdefault(state.network_degree, {})
            row[state.collected] = row.get(state.collected, 0) + 1
        return matrix

    def saved_segment_count(self) -> int:
        """Instantaneous count of decodable-but-unreconstructed segments."""
        return sum(
            1
            for state in self._segments.values()
            if state.is_network_decodable and not state.is_complete
        )
