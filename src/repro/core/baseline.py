"""Baseline: the traditional centralized pull of Fig. 1(a).

Logging servers pull statistics blocks *directly* from the peers that
generated them — no gossip, no coding, no decentralized buffering.  Each
pull trial picks a uniformly random peer with pending data and retrieves
(and removes) its oldest waiting block, so every delivered block is useful
by construction: the baseline's weakness is not redundancy but *capacity*
and *persistence*:

- throughput is hard-capped at the aggregate server rate ``c·N``, so any
  demand peak above it builds an unbounded backlog, and
- a block waiting at its generating peer is lost the moment that peer
  departs (churn) or ages the block out (TTL) — the "statistics from
  departed peers may be the most useful" failure of Sec. 1.

The baseline reuses the same engine, churn model, workloads, and metrics as
the indirect system, so head-to-head comparisons differ only in mechanism.
Delivered blocks are reported through the same metric channels (a delivered
block counts as a completed size-1 segment, giving per-block delay).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.params import Parameters
from repro.core.system import PostmortemReport, SourceRecovery
from repro.sim.churn import ChurnModel
from repro.sim.engine import PoissonProcess, Simulator, ThinnedPoissonProcess
from repro.sim.metrics import MetricsCollector, MetricsReport
from repro.sim.rng import SeedSequenceRegistry, exponential
from repro.stats.workload import Workload
from repro.util.randomset import RandomizedSet


class _PendingBlock:
    """One statistics block waiting at its generating peer."""

    __slots__ = ("created_at", "alive")

    def __init__(self, created_at: float) -> None:
        self.created_at = created_at
        self.alive = True


class _DirectPeer:
    """FIFO buffer of pending blocks at one peer."""

    __slots__ = ("slot", "generation", "capacity", "queue")

    def __init__(self, slot: int, capacity: int, generation: int = 0) -> None:
        self.slot = slot
        self.generation = generation
        self.capacity = capacity
        self.queue: Deque[_PendingBlock] = deque()

    def live_count(self) -> int:
        return sum(1 for block in self.queue if block.alive)

    def compact(self) -> None:
        """Drop dead (expired) blocks from the head so pops stay O(1)."""
        while self.queue and not self.queue[0].alive:
            self.queue.popleft()


class DirectCollectionSystem:
    """Traditional pull-based collection (the paper's strawman).

    Configuration reuses :class:`Parameters`: ``arrival_rate``,
    ``normalized_capacity``, ``n_servers``, ``deletion_rate`` (how long a
    peer retains un-collected statistics), ``buffer_capacity`` and
    ``mean_lifetime`` apply; ``gossip_rate`` and ``segment_size`` are
    ignored (there is no gossip and no coding).

    Set ``retain_forever=True`` to disable TTL aging (peers hold data until
    collected or departed), isolating churn as the only loss channel.

    By default the server is *generous*: it knows which peers have pending
    data and always probes one of them (an oracle a million-peer deployment
    would not have).  ``blind=True`` removes the oracle: each pull probes a
    uniformly random peer and comes back empty-handed if that peer has
    nothing pending — the "leaving most of the peers waiting for service"
    reality of Sec. 1.
    """

    def __init__(
        self,
        params: Parameters,
        seed: int = 0,
        workload: Optional[Workload] = None,
        retain_forever: bool = False,
        blind: bool = False,
    ) -> None:
        self.params = params
        self.retain_forever = retain_forever
        self.blind = blind
        self.seeds = SeedSequenceRegistry(seed)
        self.sim = Simulator()
        self.workload = workload

        self._injection_rng = self.seeds.python("injection")
        self._server_rng = self.seeds.python("server")
        self._ttl_rng = self.seeds.python("ttl")
        self._churn_rng = self.seeds.python("churn")
        self._selection_rng = self.seeds.python("selection")

        # segment_size is forced to 1: direct collection moves raw blocks.
        self.metrics = MetricsCollector(
            n_peers=params.n_peers,
            arrival_rate=params.arrival_rate,
            segment_size=1,
            normalized_capacity=params.normalized_capacity,
            now=0.0,
        )
        self.metrics.set_deletion_rate(params.deletion_rate)

        capacity = params.effective_buffer_capacity
        self.peers: List[_DirectPeer] = [
            _DirectPeer(slot, capacity) for slot in range(params.n_peers)
        ]
        self._pending: RandomizedSet[int] = RandomizedSet()
        self.delivered = 0
        self.lost_to_churn = 0
        self.lost_to_ttl = 0
        self.lost_to_overflow = 0
        #: per-source accounting for postmortem comparison with the
        #: indirect system: (slot, generation) -> blocks generated/delivered.
        self.injected_by_source: Dict[Tuple[int, int], int] = {}
        self.delivered_by_source: Dict[Tuple[int, int], int] = {}

        self._processes: List[PoissonProcess] = []
        for slot in range(params.n_peers):
            if workload is None:
                self._processes.append(
                    PoissonProcess(
                        self.sim,
                        self._injection_rng,
                        params.arrival_rate,
                        lambda slot=slot: self._generate(slot),
                        cancellable=False,
                    )
                )
            else:
                self._processes.append(
                    ThinnedPoissonProcess(
                        self.sim,
                        self._injection_rng,
                        max_rate=workload.max_rate,
                        rate_fn=workload.rate,
                        action=lambda slot=slot: self._generate(slot),
                    )
                )
        for index in range(params.n_servers):
            self._processes.append(
                PoissonProcess(
                    self.sim,
                    self._server_rng,
                    params.per_server_rate,
                    self._server_pull,
                    cancellable=False,
                )
            )

        self.churn = ChurnModel(
            sim=self.sim,
            rng=self._churn_rng,
            n_slots=params.n_peers,
            mean_lifetime=params.mean_lifetime,
            on_replace=self._replace_peer,
        )
        self.churn.start()

    # -- event handlers ---------------------------------------------------------

    def _generate(self, slot: int) -> None:
        peer = self.peers[slot]
        in_window = self.metrics.in_window
        peer.compact()
        if peer.live_count() >= peer.capacity:
            self.lost_to_overflow += 1
            self.metrics.blocked_injections.increment(in_window)
            return
        block = _PendingBlock(self.sim.now)
        peer.queue.append(block)
        source = (slot, peer.generation)
        self.injected_by_source[source] = (
            self.injected_by_source.get(source, 0) + 1
        )
        self.metrics.injected_blocks.increment(in_window)
        self.metrics.injected_segments.increment(in_window)
        self.metrics.total_blocks.add(self.sim.now, 1)
        if peer.live_count() == 1:
            self._pending.add(slot)
            self.metrics.empty_peers.add(self.sim.now, -1)
        if not self.retain_forever:
            ttl = exponential(self._ttl_rng, self.params.deletion_rate)
            generation = peer.generation
            self.sim.schedule_call(
                ttl, lambda: self._expire(slot, generation, block)
            )

    def _expire(self, slot: int, generation: int, block: _PendingBlock) -> None:
        if not block.alive:
            return
        peer = self.peers[slot]
        if peer.generation != generation:
            return  # churn already destroyed this buffer
        block.alive = False
        self.lost_to_ttl += 1
        self.metrics.blocks_expired.increment(self.metrics.in_window)
        self.metrics.total_blocks.add(self.sim.now, -1)
        self.metrics.segments_lost.increment(self.metrics.in_window)
        peer.compact()
        if peer.live_count() == 0:
            self._pending.discard(slot)
            self.metrics.empty_peers.add(self.sim.now, 1)

    def _server_pull(self) -> None:
        in_window = self.metrics.in_window
        self.metrics.pulls.increment(in_window)
        if self.blind:
            # Oracle-free probe: any peer, pending or not.
            slot = self._selection_rng.randrange(self.params.n_peers)
            if slot not in self._pending:
                self.metrics.idle_pulls.increment(in_window)
                return
        elif not self._pending:
            self.metrics.idle_pulls.increment(in_window)
            return
        else:
            slot = self._pending.sample(self._selection_rng)
        peer = self.peers[slot]
        peer.compact()
        block = peer.queue.popleft()
        block.alive = False
        self.delivered += 1
        source = (slot, peer.generation)
        self.delivered_by_source[source] = (
            self.delivered_by_source.get(source, 0) + 1
        )
        self.metrics.useful_pulls.increment(in_window)
        self.metrics.total_blocks.add(self.sim.now, -1)
        # A delivered raw block is a completed "segment" of size 1, which
        # feeds the shared delay accounting.
        self.metrics.on_segment_completed(self.sim.now, block.created_at, 1)
        self.metrics.segments_completed.increment(in_window)
        peer.compact()
        if peer.live_count() == 0:
            self._pending.discard(slot)
            self.metrics.empty_peers.add(self.sim.now, 1)

    def _replace_peer(self, slot: int) -> None:
        peer = self.peers[slot]
        lost = 0
        for block in peer.queue:
            if block.alive:
                block.alive = False
                lost += 1
        in_window = self.metrics.in_window
        if lost:
            self.lost_to_churn += lost
            self.metrics.blocks_lost_to_churn.increment(in_window, lost)
            self.metrics.segments_lost.increment(in_window, lost)
            self.metrics.total_blocks.add(self.sim.now, -lost)
            self._pending.discard(slot)
            self.metrics.empty_peers.add(self.sim.now, 1)
        self.metrics.departures.increment(in_window)
        self.peers[slot] = _DirectPeer(
            slot, self.params.effective_buffer_capacity, peer.generation + 1
        )

    # -- measurement lifecycle ------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    def run(self, warmup: float, duration: float) -> MetricsReport:
        """Warm up, measure for *duration*, and return the window's report."""
        if warmup < 0 or duration <= 0:
            raise ValueError(
                f"need warmup >= 0 and duration > 0, got {warmup}, {duration}"
            )
        if warmup > 0:
            self.sim.run_until(self.sim.now + warmup)
        return self.run_phase(duration)

    def run_phase(self, duration: float) -> MetricsReport:
        """Open a fresh measurement window, run, and report."""
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        self.metrics.begin_window(self.sim.now)
        self.sim.run_until(self.sim.now + duration)
        return self.metrics.report(self.sim.now, engine=self.sim.perf())

    def run_until(self, end_time: float) -> None:
        """Advance raw simulation time without touching metric windows."""
        self.sim.run_until(end_time)

    def backlog(self) -> int:
        """Blocks currently waiting at peers (the server-side debt)."""
        return sum(peer.live_count() for peer in self.peers)

    def postmortem(self) -> PostmortemReport:
        """Recovery accounting split by source departure.

        Direct collection keeps a peer's un-pulled blocks only at that peer,
        so nothing of a departed generation is ever recoverable — the
        structural weakness the indirect design removes.  Live generations'
        surviving backlog is still collectable.
        """
        departed = SourceRecovery()
        live = SourceRecovery()
        live_backlog: Dict[Tuple[int, int], int] = {}
        for peer in self.peers:
            count = peer.live_count()
            if count:
                live_backlog[(peer.slot, peer.generation)] = count
        for source, injected in sorted(self.injected_by_source.items()):
            slot, generation = source
            bucket = (
                departed if generation < self.peers[slot].generation else live
            )
            bucket.injected += injected
            delivered = self.delivered_by_source.get(source, 0)
            bucket.delivered += delivered
            bucket.collected += delivered  # every direct pull is an original
            bucket.recoverable += live_backlog.get(source, 0)
        return PostmortemReport(departed=departed, live=live)

    def loss_summary(self) -> Tuple[int, int, int]:
        """(lost_to_churn, lost_to_ttl, lost_to_overflow) lifetime totals."""
        return self.lost_to_churn, self.lost_to_ttl, self.lost_to_overflow
