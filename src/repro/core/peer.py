"""Peer model: the bounded, TTL-aged buffer of coded blocks.

Each peer sets aside a small buffer (cap ``B`` blocks) in which it stores

- the original blocks of segments it generates itself, and
- coded blocks of other peers' segments received through gossip,

organized per segment (a :class:`SegmentHolding`).  The holding answers the
two questions the protocol asks constantly:

- *can this peer serve segment r?* — it holds at least one live block of r;
- *does this peer still need segment r?* — it holds fewer than ``s``
  linearly independent blocks of r (Sec. 2's gossip-target eligibility).

In abstract mode blocks carry no coefficients and independence is the
paper's bipartite-graph idealization (``min(count, s)``); in full-RLNC mode
independence is the true GF(2^8) rank of the held coefficient vectors,
recomputed lazily because TTL expiry can delete any subset of blocks.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

import numpy as np

from repro.coding.block import CodedBlock, SegmentDescriptor
from repro.coding.linalg import rank as matrix_rank
from repro.coding.rlnc import RngLike, recode
from repro.util.randomset import RandomizedSet


class SegmentHolding:
    """All live blocks one peer holds for one segment."""

    __slots__ = ("descriptor", "blocks", "polluted_count", "_rank_cache")

    def __init__(self, descriptor: SegmentDescriptor) -> None:
        self.descriptor = descriptor
        self.blocks: List[CodedBlock] = []
        #: live blocks carrying the pollution tag (fault injection); peers
        #: cannot tell junk from data, so polluted blocks occupy buffer space
        #: like any other — but they contribute no useful information.
        self.polluted_count = 0
        self._rank_cache: Optional[int] = None

    @property
    def block_count(self) -> int:
        """Live blocks held (graph degree contribution of this pair)."""
        return len(self.blocks)

    def independent_count(self) -> int:
        """Linearly independent blocks held.

        Abstract blocks (no coefficients) use the idealized ``min(count, s)``;
        coded blocks use the true rank, cached until the holding mutates.
        """
        if not self.blocks:
            return 0
        if self.blocks[0].coefficients is None:
            useful = len(self.blocks) - self.polluted_count
            return min(useful, self.descriptor.size)
        if self._rank_cache is None:
            matrix = np.stack([block.coefficients for block in self.blocks])
            self._rank_cache = matrix_rank(matrix)
        return self._rank_cache

    def add(self, block: CodedBlock) -> None:
        """Store one live block of this segment."""
        if block.segment.segment_id != self.descriptor.segment_id:
            raise ValueError(
                f"block of segment {block.segment.segment_id} added to "
                f"holding of segment {self.descriptor.segment_id}"
            )
        self.blocks.append(block)
        if block.polluted:
            self.polluted_count += 1
        self._rank_cache = None

    def remove(self, block: CodedBlock) -> bool:
        """Drop *block* if present; returns True when removed."""
        try:
            self.blocks.remove(block)
        except ValueError:
            return False
        if block.polluted:
            self.polluted_count -= 1
        self._rank_cache = None
        return True

    def make_coded_block(self, rng: RngLike, now: float) -> CodedBlock:
        """Emit one (re)coded block from the held blocks (Sec. 2 step 1).

        Abstract mode emits a bare block (an edge copy); RLNC mode draws
        random GF(2^8) coefficients over the held blocks.
        """
        if not self.blocks:
            raise ValueError("cannot encode from an empty holding")
        if self.blocks[0].coefficients is None:
            return CodedBlock(segment=self.descriptor, created_at=now)
        return recode(self.blocks, rng, created_at=now)


class Peer:
    """One participant: a bounded buffer of segment holdings.

    The peer object is generation-scoped: churn replaces the object wholesale
    (same topology slot, fresh empty buffer), so a peer never needs to be
    "reset".
    """

    __slots__ = (
        "slot",
        "generation",
        "capacity",
        "holdings",
        "held_segments",
        "buffered_blocks",
        "block_count",
        "joined_at",
    )

    def __init__(
        self, slot: int, capacity: int, generation: int = 0, joined_at: float = 0.0
    ) -> None:
        if capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {capacity}")
        self.slot = slot
        self.generation = generation
        self.capacity = capacity
        self.holdings: Dict[int, SegmentHolding] = {}
        #: distinct segment ids held, supporting O(1) uniform choice over
        #: segments (the "uniform" selection rule of the Sec. 2 text).
        self.held_segments: RandomizedSet[int] = RandomizedSet()
        #: all live buffered blocks, supporting O(1) uniform choice over
        #: blocks — a block-uniform draw selects a segment with probability
        #: proportional to its multiplicity in the buffer, which realizes the
        #: degree-proportional rule the paper's analysis assumes.
        self.buffered_blocks: RandomizedSet[CodedBlock] = RandomizedSet()
        self.block_count = 0
        self.joined_at = joined_at

    # -- predicates ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the buffer holds no blocks (degree-0 peer)."""
        return self.block_count == 0

    @property
    def is_full(self) -> bool:
        """True when the buffer is at its cap (refuses gossip, Sec. 2)."""
        return self.block_count >= self.capacity

    @property
    def free_space(self) -> int:
        """Remaining buffer slots."""
        return self.capacity - self.block_count

    def can_inject(self, segment_size: int) -> bool:
        """True if a fresh segment of *segment_size* blocks fits (degree ≤ B−s)."""
        return self.block_count + segment_size <= self.capacity

    def needs_segment(self, segment_id: int, segment_size: int) -> bool:
        """Gossip-target eligibility for one segment: not full, and fewer
        than ``s`` independent blocks of it held."""
        if self.is_full:
            return False
        holding = self.holdings.get(segment_id)
        if holding is None:
            return True
        return holding.independent_count() < segment_size

    def holds_segment(self, segment_id: int) -> bool:
        """True when at least one live block of the segment is buffered."""
        return segment_id in self.holdings

    # -- mutations -----------------------------------------------------------

    def add_block(self, block: CodedBlock) -> None:
        """Buffer one live block; raises if the buffer is full."""
        if self.is_full:
            raise ValueError(
                f"peer {self.slot} buffer full ({self.capacity} blocks)"
            )
        segment_id = block.segment.segment_id
        holding = self.holdings.get(segment_id)
        if holding is None:
            holding = SegmentHolding(block.segment)
            self.holdings[segment_id] = holding
            self.held_segments.add(segment_id)
        holding.add(block)
        self.buffered_blocks.add(block)
        self.block_count += 1

    def remove_block(self, block: CodedBlock) -> bool:
        """Remove one block (TTL expiry); True when it was present."""
        segment_id = block.segment.segment_id
        holding = self.holdings.get(segment_id)
        if holding is None or not holding.remove(block):
            return False
        self.buffered_blocks.discard(block)
        self.block_count -= 1
        if holding.block_count == 0:
            del self.holdings[segment_id]
            self.held_segments.discard(segment_id)
        return True

    def sample_segment(self, rng: random.Random) -> int:
        """Uniformly random held segment id; raises IndexError when empty."""
        return self.held_segments.sample(rng)

    def sample_segment_proportional(self, rng: random.Random) -> int:
        """Held segment id drawn with probability proportional to the number
        of its blocks in the buffer (uniform over buffered blocks)."""
        return self.buffered_blocks.sample(rng).segment.segment_id

    def all_blocks(self) -> List[CodedBlock]:
        """Every live block in the buffer (e.g. for churn teardown)."""
        return [
            block
            for holding in self.holdings.values()
            for block in holding.blocks
        ]

    def degree_of(self, segment_id: int) -> int:
        """Blocks held of one segment (edge multiplicity in the graph view)."""
        holding = self.holdings.get(segment_id)
        return 0 if holding is None else holding.block_count

    def __repr__(self) -> str:
        return (
            f"Peer(slot={self.slot}, gen={self.generation}, "
            f"blocks={self.block_count}/{self.capacity}, "
            f"segments={len(self.holdings)})"
        )
