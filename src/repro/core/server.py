"""Logging servers: the coupon-collector pull of Sec. 2, plus variants.

"At rate c_s, each server chooses a peer p u.a.r. from among all the peers
with non-null buffers and chooses a random segment in peer p, which then
transmits one coded block of this segment to the server."

Servers are deliberately simple: they never compare buffers with peers or
with each other, so redundant pulls happen and are charged against the
collection efficiency η (Theorem 2).  All servers pool their collected
blocks — the segment state ``j`` counts blocks collected by *the servers*
collectively — while per-server accounting records how the load spreads.

Beyond the paper's policy, the pool implements three pull-scheduling
variants (the E-ABL-SCHED ablation) that probe how much of the redundancy
cost smarter servers could claw back while staying stateless-ish:

- ``"random"`` — the paper's policy exactly (default);
- ``"round-robin"`` — sweep peer slots cyclically (skipping empty buffers)
  instead of sampling, equalizing per-peer service;
- ``"avoid-redundant"`` — resample up to ``scheduler_tries`` times when the
  drawn segment is already complete (a one-bit "done" hint per segment,
  which a real deployment gets for free from its own decode state);
- ``"greedy-completion"`` — draw ``scheduler_tries`` candidates and pull
  the incomplete one closest to completion, concentrating pulls so partial
  segments actually finish (improves goodput, not just efficiency).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.params import (
    SELECTION_PROPORTIONAL,
    SELECTION_UNIFORM,
    VALID_SELECTIONS,
)
from repro.adversary.defense import (
    OUTCOME_JUNK,
    OUTCOME_REDUNDANT,
    OUTCOME_USEFUL,
    PullSourceScorer,
)
from repro.adversary.injector import AdversaryInjector
from repro.core.peer import Peer
from repro.core.segments import SegmentRegistry, SegmentState
from repro.faults.injector import FaultInjector, corrupt_block
from repro.sim.metrics import MetricsCollector
from repro.sim.trace import (
    KIND_DROP,
    KIND_POLLUTED,
    KIND_QUARANTINE,
    Tracer,
)

#: Server pull-scheduling policies (see module docstring).
POLICY_RANDOM = "random"
POLICY_ROUND_ROBIN = "round-robin"
POLICY_AVOID_REDUNDANT = "avoid-redundant"
POLICY_GREEDY_COMPLETION = "greedy-completion"
VALID_POLICIES = (
    POLICY_RANDOM,
    POLICY_ROUND_ROBIN,
    POLICY_AVOID_REDUNDANT,
    POLICY_GREEDY_COMPLETION,
)


@dataclass
class LoggingServer:
    """Per-server pull accounting (state is pooled in the registry)."""

    server_id: int
    pulls: int = 0
    useful_pulls: int = 0
    redundant_pulls: int = 0
    idle_pulls: int = 0
    #: fault injection: pulls whose block transfer was lost in flight.
    dropped_pulls: int = 0
    #: fault injection: polluted blocks detected and discarded.
    polluted_pulls: int = 0
    #: adversary: pulls a lying advertisement redirected to an attractor.
    captured_pulls: int = 0
    #: defense: target draws rejected because the identity was quarantined.
    quarantined_pulls: int = 0

    @property
    def efficiency(self) -> float:
        """Fraction of this server's pulls that advanced some segment."""
        return self.useful_pulls / self.pulls if self.pulls else 0.0


class ServerPool:
    """The collaborating logging servers and their pull behavior.

    Collaborators are injected so the pool is testable without the full
    system: *sample_nonempty_peer* returns a uniformly random peer with a
    non-empty buffer (or None), and *rng*/*coding_rng* drive segment choice
    and RLNC re-encoding respectively.
    """

    def __init__(
        self,
        n_servers: int,
        registry: SegmentRegistry,
        metrics: MetricsCollector,
        rng: random.Random,
        coding_rng: np.random.Generator,
        sample_nonempty_peer: Callable[[], Optional[Peer]],
        rlnc_mode: bool,
        segment_selection: str = SELECTION_PROPORTIONAL,
        pull_policy: str = POLICY_RANDOM,
        scheduler_tries: int = 8,
        all_peers: Optional[Callable[[int], Peer]] = None,
        n_slots: int = 0,
        faults: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
        adversary: Optional[AdversaryInjector] = None,
        scorer: Optional[PullSourceScorer] = None,
        discounting: bool = False,
        on_quarantine: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {n_servers}")
        if segment_selection not in VALID_SELECTIONS:
            raise ValueError(
                f"segment_selection must be one of {VALID_SELECTIONS}, "
                f"got {segment_selection!r}"
            )
        if pull_policy not in VALID_POLICIES:
            raise ValueError(
                f"pull_policy must be one of {VALID_POLICIES}, "
                f"got {pull_policy!r}"
            )
        if scheduler_tries < 1:
            raise ValueError(
                f"scheduler_tries must be >= 1, got {scheduler_tries}"
            )
        if pull_policy == POLICY_ROUND_ROBIN and (all_peers is None or n_slots < 1):
            raise ValueError(
                "round-robin policy needs the all_peers accessor and n_slots"
            )
        if adversary is not None and all_peers is None:
            raise ValueError(
                "an adversary injector needs the all_peers accessor "
                "(captured pulls must be redirected to attractor slots)"
            )
        self.servers: List[LoggingServer] = [
            LoggingServer(server_id=i) for i in range(n_servers)
        ]
        self._registry = registry
        self._metrics = metrics
        self._rng = rng
        self._coding_rng = coding_rng
        self._sample_nonempty_peer = sample_nonempty_peer
        self._rlnc_mode = rlnc_mode
        self._uniform_selection = segment_selection == SELECTION_UNIFORM
        self._policy = pull_policy
        self._scheduler_tries = scheduler_tries
        self._all_peers = all_peers
        self._n_slots = n_slots
        self._rr_cursor = 0
        #: optional FaultInjector (transfer loss + pollution detection) and
        #: Tracer for the fault-channel events.
        self._faults = faults
        self._tracer = tracer
        #: optional AdversaryInjector (liar capture, junk service) and
        #: PullSourceScorer defense state, plus the defense toggles.
        self._adversary = adversary
        self._scorer = scorer
        self._discounting = discounting and scorer is not None
        self._on_quarantine = on_quarantine

    # -- candidate selection ---------------------------------------------------

    def _draw_segment(self, peer: Peer) -> int:
        if self._uniform_selection:
            return peer.sample_segment(self._rng)
        return peer.sample_segment_proportional(self._rng)

    def _draw_candidate(self) -> Optional[Tuple[Peer, SegmentState]]:
        """One (peer, segment state) draw under the paper's random policy."""
        peer = self._sample_nonempty_peer()
        if peer is None:
            return None
        return peer, self._registry.get(self._draw_segment(peer))

    def _draw_round_robin(self) -> Optional[Tuple[Peer, SegmentState]]:
        """Next non-empty peer in slot order (at most one full sweep)."""
        for _ in range(self._n_slots):
            peer = self._all_peers(self._rr_cursor)
            self._rr_cursor = (self._rr_cursor + 1) % self._n_slots
            if not peer.is_empty:
                return peer, self._registry.get(self._draw_segment(peer))
        return None

    def _select(self) -> Optional[Tuple[Peer, SegmentState]]:
        """Pick the (peer, segment) to pull from, according to the policy."""
        if self._policy == POLICY_ROUND_ROBIN:
            return self._draw_round_robin()
        if self._policy == POLICY_AVOID_REDUNDANT:
            candidate = None
            for _ in range(self._scheduler_tries):
                candidate = self._draw_candidate()
                if candidate is None or not candidate[1].is_complete:
                    return candidate
            return candidate  # every try was redundant: pay the redundant pull
        if self._policy == POLICY_GREEDY_COMPLETION:
            best: Optional[Tuple[Peer, SegmentState]] = None
            for _ in range(self._scheduler_tries):
                candidate = self._draw_candidate()
                if candidate is None:
                    break
                state: SegmentState = candidate[1]
                if state.is_complete:
                    if best is None:
                        best = candidate
                    continue
                if (
                    best is None
                    or best[1].is_complete
                    or state.collected > best[1].collected
                ):
                    best = candidate
            return best
        return self._draw_candidate()

    def pull(self, server_index: int, now: float) -> None:
        """Execute one pull trial for server *server_index* at time *now*.

        Under fault injection the trial may additionally (a) lose the block
        transfer in flight (``pull_loss_rate``), or (b) receive a polluted
        block, which the server detects and discards — in RLNC mode through
        the actual GF(2^8) rank arithmetic (a corrupted header is provably
        non-innovative), in abstract mode through the pollution tag — and
        then retries up to ``pollution_repull_budget`` more draws within the
        same trial.  Neither path can corrupt the pooled decoder state.
        """
        server = self.servers[server_index]
        server.pulls += 1
        in_window = self._metrics.in_window
        self._metrics.pulls.increment(in_window)

        candidate = self._select()
        if candidate is None:
            # Nothing buffered anywhere: the trial is spent but collects
            # nothing (possible during drain-out or at tiny lambda).
            server.idle_pulls += 1
            self._metrics.idle_pulls.increment(in_window)
            return
        peer, state = candidate

        adversary = self._adversary
        if adversary is not None:
            captured = adversary.capture_pull()
            if captured is not None:
                # A lying advertisement won the target selection.  Under
                # advertisement discounting the capture only survives with
                # probability equal to the attractor's trust score.
                cap_peer = self._all_peers(captured)
                trust = 1.0
                if self._discounting:
                    trust = self._scorer.trust(
                        cap_peer.slot, cap_peer.generation
                    )
                if adversary.accept_capture(trust):
                    server.captured_pulls += 1
                    self._metrics.pulls_captured.increment(in_window)
                    if cap_peer.is_empty:
                        # The attractor has nothing buffered: the pull is
                        # wasted outright (bait with no switch).
                        server.idle_pulls += 1
                        self._metrics.idle_pulls.increment(in_window)
                        return
                    peer = cap_peer
                    state = self._registry.get(self._draw_segment(peer))

        scorer = self._scorer
        if scorer is not None and scorer.quarantine_enabled:
            # Pull-source scoring: re-draw while the selected identity is
            # quarantined, up to the scheduler's retry budget.  An exhausted
            # budget pulls anyway — quarantine demotes, it never starves the
            # servers (liveness under fraction=1.0 adversaries).
            tries = self._scheduler_tries
            while not scorer.admit(peer.slot, peer.generation):
                server.quarantined_pulls += 1
                self._metrics.pulls_quarantine_rejected.increment(in_window)
                tries -= 1
                if tries <= 0:
                    break
                candidate = self._select()
                if candidate is None:
                    server.idle_pulls += 1
                    self._metrics.idle_pulls.increment(in_window)
                    return
                peer, state = candidate

        if state.is_complete:
            # "servers may collect redundant blocks of a segment that is
            # already decodable" — charged, not prevented.
            server.redundant_pulls += 1
            self._metrics.redundant_pulls.increment(in_window)
            self._score_outcome(peer, OUTCOME_REDUNDANT, now)
            return

        faults = self._faults
        if faults is not None and faults.drop_pull():
            server.dropped_pulls += 1
            self._metrics.transfers_dropped.increment(in_window)
            if self._tracer is not None:
                self._tracer.record(
                    now,
                    KIND_DROP,
                    peer=peer.slot,
                    segment=state.segment_id,
                    pull=1.0,
                )
            return

        attempts = 1
        if faults is not None and faults.polluters:
            attempts += faults.plan.pollution_repull_budget
        while True:
            attempts -= 1
            holding = peer.holdings[state.segment_id]
            adv_junk = adversary is not None and adversary.serves_junk(
                peer.slot, peer.generation
            )
            polluted = adv_junk or (
                faults is not None and faults.pollutes(peer.slot, holding)
            )
            if adv_junk:
                self._metrics.junk_blocks_served.increment(in_window)
            if self._rlnc_mode:
                block = holding.make_coded_block(self._coding_rng, now)
                if polluted:
                    block = corrupt_block(block)
                # The corrupted block still goes through the real decoder:
                # detection must come from rank arithmetic, not from trust
                # in the tag.  A zeroed header can never be innovative.
                innovative = self._registry.on_server_block(state, now, block)
                if polluted and innovative:
                    raise AssertionError(
                        "polluted block counted innovative by the decoder"
                    )
            elif polluted:
                # Abstract mode: the tag *is* the detection (tagged-block
                # approximation); the block never reaches the server state.
                innovative = False
            else:
                innovative = self._registry.on_server_block(state, now)

            if polluted:
                server.polluted_pulls += 1
                self._metrics.blocks_rejected_polluted.increment(in_window)
                self._score_outcome(peer, OUTCOME_JUNK, now)
                if self._tracer is not None:
                    self._tracer.record(
                        now,
                        KIND_POLLUTED,
                        peer=peer.slot,
                        segment=state.segment_id,
                    )
                if attempts <= 0:
                    # Re-pull budget spent: the trial collected nothing.
                    return
                candidate = self._select()
                if candidate is None:
                    server.idle_pulls += 1
                    self._metrics.idle_pulls.increment(in_window)
                    return
                peer, state = candidate
                if state.is_complete:
                    server.redundant_pulls += 1
                    self._metrics.redundant_pulls.increment(in_window)
                    self._score_outcome(peer, OUTCOME_REDUNDANT, now)
                    return
                continue

            if innovative:
                server.useful_pulls += 1
                self._metrics.useful_pulls.increment(in_window)
                self._score_outcome(peer, OUTCOME_USEFUL, now)
            else:
                server.redundant_pulls += 1
                self._metrics.redundant_pulls.increment(in_window)
                self._score_outcome(peer, OUTCOME_REDUNDANT, now)
            return

    def _score_outcome(self, peer: Peer, outcome: str, now: float) -> None:
        """Fold one pull outcome into the defense scorer (if enabled)."""
        scorer = self._scorer
        if scorer is None:
            return
        if scorer.record(peer.slot, peer.generation, outcome):
            # This observation newly quarantined the identity.
            self._metrics.slots_quarantined.increment(self._metrics.in_window)
            if self._tracer is not None:
                self._tracer.record(now, KIND_QUARANTINE, peer=peer.slot)
            if self._on_quarantine is not None:
                self._on_quarantine(peer.slot, peer.generation)

    # -- diagnostics -----------------------------------------------------------

    def total_pulls(self) -> int:
        """Aggregate pull trials across all servers."""
        return sum(server.pulls for server in self.servers)

    def pool_efficiency(self) -> float:
        """Aggregate useful/total ratio across all servers."""
        pulls = self.total_pulls()
        if not pulls:
            return 0.0
        return sum(server.useful_pulls for server in self.servers) / pulls

    def load_balance(self) -> float:
        """Max/mean pull ratio across servers (1.0 = perfectly even)."""
        pulls = [server.pulls for server in self.servers]
        total = sum(pulls)
        if not total:
            return 1.0
        mean = total / len(pulls)
        return max(pulls) / mean
