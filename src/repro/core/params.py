"""Protocol parameters (the symbols of Sec. 2) and derived quantities.

One frozen dataclass carries every knob of the indirect collection protocol:

======================= ===== =============================================
attribute               paper meaning
======================= ===== =============================================
``n_peers``             N     peers in the session
``arrival_rate``        λ     statistics blocks generated per peer per unit
                              time (segments arrive at rate λ/s)
``gossip_rate``         μ     coded-block transmissions per peer per unit
                              time (upload bandwidth set aside for reporting)
``deletion_rate``       γ     TTL expiry rate; mean block lifetime is 1/γ
``segment_size``        s     blocks grouped per segment (s=1: no coding)
``normalized_capacity`` c     aggregate server pull rate over N, c=c_s·N_s/N
``n_servers``           N_s   number of collaborating logging servers
``buffer_capacity``     B     per-peer buffer cap in blocks
======================= ===== =============================================

plus implementation choices (simulation fidelity mode, payload size, gossip
target retry budget, churn lifetime).  Parameter sanity is enforced eagerly;
notably the paper's standing assumptions ``c < μ`` (Theorem 2) and
``μ/γ < 20``-ish storage overhead are surfaced as warnings-by-property, not
hard errors, so exploratory sweeps remain possible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.adversary.plan import AdversaryPlan
from repro.faults.plan import FaultPlan
from repro.util.validation import (
    require_in_range,
    require_nonnegative,
    require_positive,
    require_positive_int,
    require_probability,
    require_rate,
)

#: Simulation fidelity modes.
MODE_ABSTRACT = "abstract"
MODE_RLNC = "rlnc"
VALID_MODES = (MODE_ABSTRACT, MODE_RLNC)

#: Simulation engines.
#:
#: ``"event"`` — the event-exact engine: every protocol action is one event
#: on the shared heap (repro.core.system + repro.sim.engine).  Any mode.
#:
#: ``"fast"`` — the vectorized struct-of-arrays engine (repro.fastsim):
#: peer/segment state lives in flat numpy columns and the Poisson channels
#: are advanced in batch steps (tau-leaping, or the exact aggregate-clock
#: fallback when ``tau == 0``).  Abstract mode only; see docs/PERFORMANCE.md
#: for the accuracy/speed trade-off.
ENGINE_EVENT = "event"
ENGINE_FAST = "fast"
VALID_ENGINES = (ENGINE_EVENT, ENGINE_FAST)

#: Segment-selection rules for gossip sources and server pulls.
#:
#: ``"proportional"`` — a segment is chosen with probability proportional to
#: the number of its blocks in the chosen peer's buffer (i.e. a uniformly
#: random *block* is picked).  This realizes the degree-proportional
#: equivalence the paper's analysis assumes above Eq. (2), and is the setting
#: under which simulation matches the ODE curves, as in the paper's figures.
#:
#: ``"uniform"`` — a segment is chosen uniformly among the *distinct*
#: segments in the buffer, which is the literal protocol text of Sec. 2
#: ("chooses a segment r uniformly at random from among all the segments of
#: which it has at least one block").  This departs measurably from the
#: analysis — see the selection ablation (E-ABL-SELECT) in EXPERIMENTS.md.
SELECTION_PROPORTIONAL = "proportional"
SELECTION_UNIFORM = "uniform"
VALID_SELECTIONS = (SELECTION_PROPORTIONAL, SELECTION_UNIFORM)


@dataclass(frozen=True)
class Parameters:
    """Complete configuration of one collection session."""

    n_peers: int
    arrival_rate: float
    gossip_rate: float
    deletion_rate: float
    normalized_capacity: float
    segment_size: int = 1
    n_servers: int = 4
    buffer_capacity: Optional[int] = None
    mean_lifetime: Optional[float] = None
    mode: str = MODE_ABSTRACT
    payload_bytes: int = 0
    gossip_target_tries: int = 32
    segment_selection: str = SELECTION_PROPORTIONAL
    #: server pull scheduling: "random" (the paper), "round-robin",
    #: "avoid-redundant", or "greedy-completion" (see repro.core.server).
    pull_policy: str = "random"
    #: candidate draws per pull for the non-random policies
    scheduler_tries: int = 8
    #: mean gossip transfer latency (exponential); 0 = instantaneous, the
    #: paper's model.  In-flight blocks are re-checked for target
    #: eligibility on arrival and dropped if the target filled up or the
    #: segment meanwhile went extinct (realism extension).
    gossip_latency: float = 0.0
    #: optional fault-injection configuration (lossy links, pollution,
    #: server outages, churn bursts); None or a null plan means fault-free.
    faults: Optional[FaultPlan] = None
    #: optional Byzantine-behavior configuration (liars, free-riders,
    #: strategic polluters, sybil bursts); None or a null plan means every
    #: peer is honest.  See repro.adversary.
    adversary: Optional[AdversaryPlan] = None
    #: server-side defense: per-identity EWMA of useful-rank-delivered with
    #: quarantine of persistently junk-serving pull sources.
    pull_scoring: bool = False
    #: server-side defense: liar advertisement capture is discounted by the
    #: captured identity's trust score (requires no quarantine; the two
    #: defenses are independently toggleable).
    advert_discounting: bool = False
    #: EWMA step size for the pull-source scorer.
    scoring_alpha: float = 0.25
    #: score below which an identity is quarantined (after min pulls).
    quarantine_threshold: float = 0.25
    #: scored pulls required before quarantine may trigger.
    scoring_min_pulls: int = 8
    #: every Nth rejected draw against a quarantined identity is admitted
    #: as a probation probe so scores can recover.
    probation_interval: int = 64
    #: simulation engine: "event" (event-exact, any mode) or "fast" (the
    #: vectorized tau-leaping engine of repro.fastsim, abstract mode only).
    engine: str = ENGINE_EVENT
    #: fast-engine step size Δ for tau-leaping over the Poisson channel
    #: clocks, in simulated time units; ``0.0`` selects the exact
    #: aggregate-clock fallback.  Ignored by the event engine.
    tau: float = 0.01

    def __post_init__(self) -> None:
        require_positive_int("n_peers", self.n_peers)
        require_rate("arrival_rate", self.arrival_rate)
        require_rate("gossip_rate", self.gossip_rate, allow_zero=True)
        require_rate("deletion_rate", self.deletion_rate)
        require_rate("normalized_capacity", self.normalized_capacity)
        require_positive_int("segment_size", self.segment_size)
        require_positive_int("n_servers", self.n_servers)
        if self.n_servers > self.n_peers:
            raise ValueError(
                f"n_servers ({self.n_servers}) cannot exceed n_peers "
                f"({self.n_peers})"
            )
        if self.buffer_capacity is not None:
            require_positive_int("buffer_capacity", self.buffer_capacity)
            if self.buffer_capacity < self.segment_size:
                raise ValueError(
                    f"buffer_capacity ({self.buffer_capacity}) must be >= "
                    f"segment_size ({self.segment_size}) or no segment can "
                    f"ever be injected"
                )
        if self.mean_lifetime is not None and not math.isinf(self.mean_lifetime):
            require_positive("mean_lifetime", self.mean_lifetime)
        if self.mode not in VALID_MODES:
            raise ValueError(
                f"mode must be one of {VALID_MODES}, got {self.mode!r}"
            )
        if self.payload_bytes < 0:
            raise ValueError(
                f"payload_bytes must be >= 0, got {self.payload_bytes}"
            )
        if self.payload_bytes and self.mode != MODE_RLNC:
            raise ValueError("payload_bytes requires mode='rlnc'")
        require_positive_int("gossip_target_tries", self.gossip_target_tries)
        if self.segment_selection not in VALID_SELECTIONS:
            raise ValueError(
                f"segment_selection must be one of {VALID_SELECTIONS}, "
                f"got {self.segment_selection!r}"
            )
        # imported late to avoid a params <-> server import cycle
        from repro.core.server import VALID_POLICIES

        if self.pull_policy not in VALID_POLICIES:
            raise ValueError(
                f"pull_policy must be one of {VALID_POLICIES}, "
                f"got {self.pull_policy!r}"
            )
        require_positive_int("scheduler_tries", self.scheduler_tries)
        require_nonnegative("gossip_latency", self.gossip_latency)
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ValueError(
                f"faults must be a FaultPlan or None, got {self.faults!r}"
            )
        if self.adversary is not None and not isinstance(
            self.adversary, AdversaryPlan
        ):
            raise ValueError(
                f"adversary must be an AdversaryPlan or None, "
                f"got {self.adversary!r}"
            )
        require_probability("scoring_alpha", self.scoring_alpha)
        if self.scoring_alpha == 0.0:
            raise ValueError(
                "scoring_alpha must be > 0, got 0.0 (score would freeze)"
            )
        require_in_range(
            "quarantine_threshold", self.quarantine_threshold, low=0.0, high=1.0
        )
        require_positive_int("scoring_min_pulls", self.scoring_min_pulls)
        require_positive_int("probation_interval", self.probation_interval)
        if self.engine not in VALID_ENGINES:
            raise ValueError(
                f"engine must be one of {VALID_ENGINES}, got {self.engine!r}"
            )
        require_nonnegative("tau", self.tau)
        if self.engine == ENGINE_FAST:
            if self.mode != MODE_ABSTRACT:
                raise ValueError(
                    f"engine='fast' requires mode={MODE_ABSTRACT!r}, "
                    f"got mode={self.mode!r}"
                )
            if self.gossip_latency != 0.0:
                raise ValueError(
                    f"engine='fast' requires gossip_latency == 0 "
                    f"(instantaneous transfers), got {self.gossip_latency!r}"
                )
            if self.pull_policy != "random":
                raise ValueError(
                    f"engine='fast' requires pull_policy='random', "
                    f"got {self.pull_policy!r}"
                )
            if self.segment_selection != SELECTION_PROPORTIONAL:
                raise ValueError(
                    f"engine='fast' requires segment_selection="
                    f"{SELECTION_PROPORTIONAL!r}, "
                    f"got {self.segment_selection!r}"
                )
            if self.has_defenses:
                raise ValueError(
                    "engine='fast' does not support the server-side "
                    "defenses (pull_scoring/advert_discounting)"
                )

    # -- derived quantities --------------------------------------------------

    @property
    def segment_arrival_rate(self) -> float:
        """Per-peer segment injection rate λ/s."""
        return self.arrival_rate / self.segment_size

    @property
    def per_server_rate(self) -> float:
        """Per-server pull rate c_s = c·N/N_s."""
        return self.normalized_capacity * self.n_peers / self.n_servers

    @property
    def aggregate_capacity(self) -> float:
        """Throughput capacity C = c·N (Theorem 2)."""
        return self.normalized_capacity * self.n_peers

    @property
    def capacity_ratio(self) -> float:
        """c/λ — fraction of demand the servers can absorb instantaneously."""
        return self.normalized_capacity / self.arrival_rate

    @property
    def occupancy_upper_bound(self) -> float:
        """ρ upper bound μ/γ + λ/γ (Theorem 1 with z̃₀ → 0)."""
        return (self.gossip_rate + self.arrival_rate) / self.deletion_rate

    @property
    def storage_overhead_bound(self) -> float:
        """Theorem 1's overhead bound μ/γ."""
        return self.gossip_rate / self.deletion_rate

    @property
    def effective_buffer_capacity(self) -> int:
        """B — explicit, or auto-sized to keep the cap effectively unbinding.

        Theorem 1 assumes "the buffer size B is large enough"; the automatic
        default is several standard deviations above the expected occupancy
        and at least three segments deep.
        """
        if self.buffer_capacity is not None:
            return self.buffer_capacity
        rho = self.occupancy_upper_bound
        slack = rho + 6.0 * math.sqrt(max(rho, 1.0))
        return max(int(math.ceil(slack)), 3 * self.segment_size, 32)

    @property
    def churn_enabled(self) -> bool:
        """True when a finite mean lifetime is configured."""
        return self.mean_lifetime is not None and not math.isinf(self.mean_lifetime)

    @property
    def has_faults(self) -> bool:
        """True when a non-null fault plan is configured."""
        return self.faults is not None and not self.faults.is_null

    @property
    def has_adversary(self) -> bool:
        """True when a non-null adversary plan is configured."""
        return self.adversary is not None and not self.adversary.is_null

    @property
    def has_defenses(self) -> bool:
        """True when any server-side defense is enabled."""
        return self.pull_scoring or self.advert_discounting

    @property
    def is_coded(self) -> bool:
        """True for s ≥ 2 (network coding in effect)."""
        return self.segment_size >= 2

    @property
    def satisfies_capacity_assumption(self) -> bool:
        """Theorem 2's standing assumption c < μ."""
        return self.normalized_capacity < self.gossip_rate

    def with_changes(self, **changes: Any) -> "Parameters":
        """Return a copy with *changes* applied (re-validated)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary."""
        lifetime = (
            f"L={self.mean_lifetime:g}" if self.churn_enabled else "static"
        )
        engine = (
            ""
            if self.engine == ENGINE_EVENT
            else f" engine={self.engine} tau={self.tau:g}"
        )
        return (
            f"N={self.n_peers} λ={self.arrival_rate:g} μ={self.gossip_rate:g} "
            f"γ={self.deletion_rate:g} s={self.segment_size} "
            f"c={self.normalized_capacity:g} N_s={self.n_servers} "
            f"B={self.effective_buffer_capacity} {lifetime} mode={self.mode}"
            f"{engine}"
        )
