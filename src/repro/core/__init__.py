"""Core protocol: parameters, peers, gossip, servers, and the two systems."""

from repro.core.baseline import DirectCollectionSystem
from repro.core.gossip import GossipProtocol
from repro.core.params import MODE_ABSTRACT, MODE_RLNC, Parameters
from repro.core.peer import Peer, SegmentHolding
from repro.core.push import PushCollectionSystem
from repro.core.segments import SegmentRegistry, SegmentState
from repro.core.server import LoggingServer, ServerPool
from repro.core.system import (
    CollectionSystem,
    PostmortemReport,
    SourceRecovery,
)

__all__ = [
    "DirectCollectionSystem",
    "GossipProtocol",
    "MODE_ABSTRACT",
    "MODE_RLNC",
    "Parameters",
    "Peer",
    "SegmentHolding",
    "SegmentRegistry",
    "SegmentState",
    "LoggingServer",
    "ServerPool",
    "CollectionSystem",
    "PostmortemReport",
    "PushCollectionSystem",
    "SourceRecovery",
]
