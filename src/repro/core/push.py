"""The truly traditional baseline: push-based periodic reporting.

Sec. 1's opening indictment is of *push* reporting: "Traditional solutions
involve sending large volumes of such data to centralized logging servers",
and under a flash crowd "such periodic reporting essentially morphs into a
de facto Distributed Denial of Service (DDoS) attack to the logging
servers, as the server bandwidth is not sufficient to handle an excessive
number of simultaneous uploading flows".

:class:`PushCollectionSystem` models exactly that: every generated
statistics block is transmitted immediately to a uniformly random logging
server; each server is a finite-capacity queue (service rate ``c_s``,
bounded waiting room) and an arrival finding the queue full is dropped on
the floor — the upload fails and the peer, having already shipped the
block, does not retry.

Properties that make it the foil for the indirect design:

- intake tracks ``min(demand(t), capacity + queue slack)``: any burst above
  the provisioned rate is *permanently* lost, so capacity must be sized for
  the peak rather than the average;
- delivery delay is near zero for accepted blocks (no trade-off taken);
- churn is irrelevant (data leaves the peer immediately) — the push model
  trades loss under load for immunity to departures, the mirror image of
  the pull model's weakness.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.core.params import Parameters
from repro.sim.engine import PoissonProcess, Simulator, ThinnedPoissonProcess
from repro.sim.metrics import MetricsCollector, MetricsReport
from repro.sim.rng import SeedSequenceRegistry, exponential
from repro.stats.workload import Workload
from repro.util.validation import require_positive_int


class _ServerQueue:
    """One logging server: exponential service, bounded waiting room."""

    __slots__ = ("server_id", "capacity", "queue", "busy", "accepted", "dropped")

    def __init__(self, server_id: int, capacity: int) -> None:
        self.server_id = server_id
        self.capacity = capacity  # waiting room (excluding the one in service)
        self.queue: Deque[float] = deque()  # arrival timestamps
        self.busy = False
        self.accepted = 0
        self.dropped = 0


class PushCollectionSystem:
    """Traditional push reporting into finite-capacity logging servers.

    Reuses :class:`Parameters`: ``arrival_rate``, ``normalized_capacity``
    and ``n_servers`` define demand and service; ``gossip_rate``,
    ``segment_size``, ``deletion_rate`` and ``mean_lifetime`` are ignored
    (there is no gossip, no coding, no buffering at peers, and churn cannot
    lose data that was already shipped).  *queue_slots* is each server's
    waiting room in blocks.
    """

    def __init__(
        self,
        params: Parameters,
        seed: int = 0,
        workload: Optional[Workload] = None,
        queue_slots: int = 16,
    ) -> None:
        self.params = params
        self.queue_slots = require_positive_int("queue_slots", queue_slots)
        self.seeds = SeedSequenceRegistry(seed)
        self.sim = Simulator()
        self.workload = workload

        self._arrival_rng = self.seeds.python("arrivals")
        self._service_rng = self.seeds.python("service")
        self._routing_rng = self.seeds.python("routing")

        self.metrics = MetricsCollector(
            n_peers=params.n_peers,
            arrival_rate=params.arrival_rate,
            segment_size=1,
            normalized_capacity=params.normalized_capacity,
            now=0.0,
        )
        self.servers: List[_ServerQueue] = [
            _ServerQueue(i, queue_slots) for i in range(params.n_servers)
        ]
        self.delivered = 0
        self.dropped = 0

        self._processes: List[PoissonProcess] = []
        for slot in range(params.n_peers):
            if workload is None:
                self._processes.append(
                    PoissonProcess(
                        self.sim,
                        self._arrival_rng,
                        params.arrival_rate,
                        self._push_block,
                        cancellable=False,
                    )
                )
            else:
                self._processes.append(
                    ThinnedPoissonProcess(
                        self.sim,
                        self._arrival_rng,
                        max_rate=workload.max_rate,
                        rate_fn=workload.rate,
                        action=self._push_block,
                    )
                )

    # -- event handlers ----------------------------------------------------------

    def _push_block(self) -> None:
        """A peer reports one freshly generated statistics block."""
        in_window = self.metrics.in_window
        self.metrics.injected_blocks.increment(in_window)
        self.metrics.injected_segments.increment(in_window)
        server = self.servers[self._routing_rng.randrange(len(self.servers))]
        # `queue` holds the in-service block (when busy) plus the waiting
        # room; an arrival is refused when the waiting room is full.
        if server.busy and len(server.queue) > server.capacity:
            # Inbound overload: the upload is refused and the data is gone —
            # the "de facto DDoS" failure mode.
            server.dropped += 1
            self.dropped += 1
            self.metrics.segments_lost.increment(in_window)
            return
        server.accepted += 1
        server.queue.append(self.sim.now)
        self.metrics.total_blocks.add(self.sim.now, 1)
        if not server.busy:
            self._begin_service(server)

    def _begin_service(self, server: _ServerQueue) -> None:
        server.busy = True
        service_time = exponential(self._service_rng, self.params.per_server_rate)
        self.sim.schedule_call(service_time, lambda: self._finish_service(server))

    def _finish_service(self, server: _ServerQueue) -> None:
        arrived_at = server.queue.popleft()
        self.delivered += 1
        in_window = self.metrics.in_window
        self.metrics.pulls.increment(in_window)
        self.metrics.useful_pulls.increment(in_window)
        self.metrics.segments_completed.increment(in_window)
        self.metrics.total_blocks.add(self.sim.now, -1)
        self.metrics.on_segment_completed(self.sim.now, arrived_at, 1)
        if server.queue:
            self._begin_service(server)
        else:
            server.busy = False

    # -- measurement lifecycle -------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    def run(self, warmup: float, duration: float) -> MetricsReport:
        """Warm up, measure for *duration*, and return the window's report."""
        if warmup < 0 or duration <= 0:
            raise ValueError(
                f"need warmup >= 0 and duration > 0, got {warmup}, {duration}"
            )
        if warmup > 0:
            self.sim.run_until(self.sim.now + warmup)
        return self.run_phase(duration)

    def run_phase(self, duration: float) -> MetricsReport:
        """Open a fresh measurement window, run, and report."""
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        self.metrics.begin_window(self.sim.now)
        self.sim.run_until(self.sim.now + duration)
        return self.metrics.report(self.sim.now, engine=self.sim.perf())

    def run_until(self, end_time: float) -> None:
        """Advance raw simulation time without touching metric windows."""
        self.sim.run_until(end_time)

    def loss_fraction(self) -> float:
        """Lifetime fraction of generated blocks dropped at the servers."""
        total = self.delivered + self.dropped + self.backlog()
        return self.dropped / total if total else 0.0

    def backlog(self) -> int:
        """Blocks currently queued at servers."""
        return sum(len(server.queue) for server in self.servers)
