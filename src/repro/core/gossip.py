"""The gossip protocol of Sec. 2: how coded blocks spread between peers.

"1) At rate μ, each peer, say peer A, chooses a segment r uniformly at
random from among all the segments of which it has at least one (coded)
block in its buffer to generate a coded block q; 2) A then transmits q to
peer B chosen u.a.r. from among its neighbors which have not received s
linearly-independent coded blocks of segment r."

Implementation notes:

- The per-peer gossip clock ticks at rate μ unconditionally and acts only
  when the buffer is non-empty, so the realized transfer rate is
  ``(1 - z₀)·μ·N`` — the exact factor in Eqs. (1)-(2) of the analysis.
- Target selection uses rejection sampling over the topology's neighbor
  draw: each candidate is accepted iff it still needs the segment (fewer
  than ``s`` independent blocks) *and* has buffer room (degree < B).  Under
  the mean-field (complete) topology with many peers almost every candidate
  qualifies, so the expected cost is O(1); a bounded retry budget keeps the
  worst case bounded, with exhausted budgets counted as ``gossip_no_target``
  ticks (the transmission opportunity is wasted, exactly as a real gossip
  round with no eligible neighbor would be).
"""

from __future__ import annotations

import random
from typing import Callable, Optional

import numpy as np

from repro.adversary.injector import AdversaryInjector
from repro.coding.block import CodedBlock
from repro.core.params import Parameters, SELECTION_UNIFORM
from repro.core.peer import Peer
from repro.core.segments import SegmentRegistry
from repro.faults.injector import FaultInjector, corrupt_block
from repro.sim.metrics import MetricsCollector
from repro.sim.topology import Topology


class GossipProtocol:
    """Executes gossip ticks for the collection system."""

    def __init__(
        self,
        params: Parameters,
        topology: Topology,
        rng: random.Random,
        coding_rng: np.random.Generator,
        get_peer: Callable[[int], Peer],
        store_block: Callable[[Peer, CodedBlock], None],
        registry: SegmentRegistry,
        metrics: MetricsCollector,
        faults: Optional[FaultInjector] = None,
        adversary: Optional[AdversaryInjector] = None,
    ) -> None:
        self._params = params
        self._topology = topology
        self._rng = rng
        self._coding_rng = coding_rng
        self._get_peer = get_peer
        self._store_block = store_block
        self._registry = registry
        self._metrics = metrics
        #: optional FaultInjector; when set, polluter peers corrupt their
        #: emissions here, at the source (transfer loss is the receiver's
        #: problem and lives in the system's store callback).
        self._faults = faults
        #: optional AdversaryInjector; free-riders/sybils suppress their
        #: ticks here and strategic polluters steer + corrupt emissions.
        self._adversary = adversary

    def tick(self, slot: int, now: float) -> bool:
        """One gossip opportunity for the peer in *slot*.

        Returns True iff a block was actually transferred.
        """
        sender = self._get_peer(slot)
        if sender.is_empty:
            # Idle tick: the μ-clock ran but there was nothing to send.
            return False

        adversary = self._adversary
        if adversary is not None and adversary.suppress_gossip(
            slot, sender.generation
        ):
            # Free-riders (and active sybils) consume blocks but contribute
            # nothing: the μ-clock tick is silently wasted.
            self._metrics.gossip_suppressed.increment(self._metrics.in_window)
            return False

        if adversary is not None and adversary.targets_low_degree(slot):
            # Strategic polluter: aim at the held segment with the least
            # network-wide redundancy (ties broken by lowest id for
            # determinism) — exactly the segment least able to absorb junk.
            segment_id = min(
                sender.holdings,
                key=lambda sid: (
                    self._registry.get(sid).network_degree,
                    sid,
                ),
            )
        elif self._params.segment_selection == SELECTION_UNIFORM:
            segment_id = sender.sample_segment(self._rng)
        else:
            segment_id = sender.sample_segment_proportional(self._rng)
        target = self._find_target(slot, segment_id)
        if target is None:
            self._metrics.gossip_no_target.increment(self._metrics.in_window)
            return False

        holding = sender.holdings[segment_id]
        block = holding.make_coded_block(self._coding_rng, now)
        if self._faults is not None:
            self._faults.maybe_pollute(slot, holding, block)
        if adversary is not None and adversary.pollutes_gossip(slot):
            corrupt_block(block)
        self._store_block(target, block)
        self._metrics.gossip_transfers.increment(self._metrics.in_window)
        return True

    def _find_target(self, sender_slot: int, segment_id: int) -> Optional[Peer]:
        """Rejection-sample an eligible neighbor for *segment_id*."""
        size = self._registry.get(segment_id).size
        for _ in range(self._params.gossip_target_tries):
            candidate_slot = self._topology.sample_neighbor(sender_slot, self._rng)
            if candidate_slot is None:
                return None
            candidate = self._get_peer(candidate_slot)
            if candidate.needs_segment(segment_id, size):
                return candidate
        return None
