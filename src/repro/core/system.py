"""The indirect collection system: full wiring of the Sec. 2 protocol.

:class:`CollectionSystem` assembles every component — peers with TTL-aged
buffers, the gossip protocol, the coupon-collector server pool, the segment
registry, optional churn, and optional time-varying workloads — on top of
the discrete-event engine, and exposes the measurement lifecycle the
experiments drive.

Fidelity modes (``Parameters.mode``):

- ``"abstract"`` — blocks are bare tokens (edges of the Sec. 3 bipartite
  graph); every coded block is assumed innovative, exactly as the paper's
  analysis assumes.  Fast; used for all figure-scale simulations.
- ``"rlnc"`` — blocks carry real GF(2^8) coefficient vectors (and optionally
  payload bytes); innovation is decided by actual rank arithmetic and
  completed segments can be decoded back into the original statistics data.

Every Poisson clock of the model is an independent exponential timer:

====================== ============================ =======================
process                rate                         per
====================== ============================ =======================
segment injection      λ/s (or workload(t)/s)       peer
gossip transmission    μ                            peer
server pull            c_s = c·N/N_s                server
block TTL expiry       γ                            block
churn departure        1/L                          peer slot
====================== ============================ =======================
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.block import (
    CodedBlock,
    SegmentDescriptor,
    make_abstract_blocks,
    make_source_blocks,
)
from repro.adversary.defense import PullSourceScorer
from repro.adversary.injector import AdversaryInjector
from repro.core.gossip import GossipProtocol
from repro.core.params import MODE_RLNC, Parameters
from repro.core.peer import Peer
from repro.core.segments import SegmentRegistry, SegmentState
from repro.core.server import ServerPool
from repro.faults.injector import FaultInjector
from repro.sim.churn import ChurnModel
from repro.sim.engine import (
    EnginePerf,
    PoissonProcess,
    Simulator,
    ThinnedPoissonProcess,
)
from repro.sim.metrics import MetricsCollector, MetricsReport
from repro.sim.rng import SeedSequenceRegistry, exponential
from repro.sim.topology import CompleteTopology, Topology
from repro.sim.trace import (
    KIND_BURST,
    KIND_COLLECT,
    KIND_COMPLETE,
    KIND_DEPART,
    KIND_DROP,
    KIND_EXPIRE,
    KIND_GOSSIP,
    KIND_INJECT,
    KIND_LOST,
    KIND_SYBIL,
    Tracer,
)
from repro.stats.workload import Workload
from repro.util.randomset import RandomizedSet

PayloadProvider = Callable[[SegmentDescriptor], np.ndarray]


class SourceRecovery:
    """Aggregate recovery accounting over a set of source generations.

    Three progressively weaker notions of "the servers have the data":

    - ``delivered`` — originals of fully reconstructed segments,
    - ``collected`` — coded blocks usefully pulled (the paper's intake
      metric; includes partial segments),
    - ``recoverable`` — originals of live incomplete segments the servers
      can still finish from network-buffered blocks.
    """

    __slots__ = ("injected", "delivered", "recoverable", "collected")

    def __init__(
        self,
        injected: int = 0,
        delivered: int = 0,
        recoverable: int = 0,
        collected: int = 0,
    ) -> None:
        self.injected = injected
        self.delivered = delivered
        self.recoverable = recoverable
        self.collected = collected

    @property
    def delivered_fraction(self) -> float:
        """Originals already reconstructed at the servers / originals made."""
        return self.delivered / self.injected if self.injected else 0.0

    @property
    def collected_fraction(self) -> float:
        """Usefully collected coded blocks / originals made (intake)."""
        return self.collected / self.injected if self.injected else 0.0

    @property
    def reachable_fraction(self) -> float:
        """Delivered plus still-collectable, as a fraction of originals."""
        if not self.injected:
            return 0.0
        return (self.delivered + self.recoverable) / self.injected

    def __repr__(self) -> str:
        return (
            f"SourceRecovery(injected={self.injected}, "
            f"delivered={self.delivered}, recoverable={self.recoverable}, "
            f"collected={self.collected})"
        )


class PostmortemReport:
    """Recovery accounting split by whether the source peer has departed.

    This operationalizes the Sec. 1 motivation: "statistics from departed
    peers may be the most useful to diagnose system outages" — the indirect
    design keeps such data collectable because coded copies outlive their
    source, whereas a direct design loses a departing peer's backlog.
    """

    __slots__ = ("departed", "live")

    def __init__(self, departed: SourceRecovery, live: SourceRecovery) -> None:
        self.departed = departed
        self.live = live

    def __repr__(self) -> str:
        return f"PostmortemReport(departed={self.departed}, live={self.live})"


class CollectionSystem:
    """One simulated collection session.

    Args:
        params: Protocol configuration (see :class:`Parameters`).
        seed: Root seed; identical seeds give bit-identical runs.
        workload: Optional time-varying per-peer generation profile; when
            omitted, injection is homogeneous Poisson at rate λ/s.
        topology: Optional overlay; defaults to the mean-field complete
            graph the paper analyzes.
        payload_provider: RLNC mode only — returns the ``(s, payload_bytes)``
            original data rows for each injected segment.  Defaults to
            uniformly random bytes.

    Typical use::

        system = CollectionSystem(params, seed=1)
        report = system.run(warmup=10.0, duration=20.0)
        print(report.normalized_throughput)
    """

    def __init__(
        self,
        params: Parameters,
        seed: int = 0,
        workload: Optional[Workload] = None,
        topology: Optional[Topology] = None,
        payload_provider: Optional[PayloadProvider] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.params = params
        self.tracer = tracer
        self.seeds = SeedSequenceRegistry(seed)
        self.sim = Simulator()
        self.topology = topology or CompleteTopology(params.n_peers)
        if self.topology.n_slots != params.n_peers:
            raise ValueError(
                f"topology has {self.topology.n_slots} slots but parameters "
                f"specify {params.n_peers} peers"
            )
        self.workload = workload
        self._rlnc = params.mode == MODE_RLNC
        if payload_provider is not None and not self._rlnc:
            raise ValueError("payload_provider requires mode='rlnc'")
        self._payload_provider = payload_provider
        if self._rlnc and params.payload_bytes and payload_provider is None:
            self._payload_provider = self._random_payloads

        # Named RNG substreams: adding a component never shifts the others.
        self._injection_rng = self.seeds.python("injection")
        self._gossip_rng = self.seeds.python("gossip")
        self._server_rng = self.seeds.python("server")
        self._ttl_rng = self.seeds.python("ttl")
        self._churn_rng = self.seeds.python("churn")
        self._selection_rng = self.seeds.python("selection")
        self._coding_rng = self.seeds.numpy("coding")

        self.metrics = MetricsCollector(
            n_peers=params.n_peers,
            arrival_rate=params.arrival_rate,
            segment_size=params.segment_size,
            normalized_capacity=params.normalized_capacity,
            now=0.0,
        )
        self.metrics.set_deletion_rate(params.deletion_rate)
        self.registry = SegmentRegistry(self.metrics, use_decoders=self._rlnc)

        #: fault injector, created only for a non-null plan so fault-free
        #: systems carry no injector at all (the cheapest form of the
        #: bitwise-neutrality guarantee — every hook guards on None).  Its
        #: "faults" substream is independent by name, so enabling faults
        #: never perturbs the protocol's own clocks.
        self.faults: Optional[FaultInjector] = None
        if params.has_faults:
            self.faults = FaultInjector(
                plan=params.faults,
                sim=self.sim,
                rng=self.seeds.python("faults"),
                n_slots=params.n_peers,
                metrics=self.metrics,
                tracer=tracer,
            )

        #: adversary injector, mirroring the fault injector's construction
        #: rule: only a non-null plan gets one, every hook guards on None,
        #: and its "adversary" substream is independent by name.
        self.adversary: Optional[AdversaryInjector] = None
        if params.has_adversary:
            self.adversary = AdversaryInjector(
                plan=params.adversary,
                sim=self.sim,
                rng=self.seeds.python("adversary"),
                n_slots=params.n_peers,
                metrics=self.metrics,
                tracer=tracer,
            )
        #: server-side defense state, constructed when either defense is on
        #: (the scorer is deterministic and draws no randomness, so its
        #: presence cannot shift any RNG substream).
        self.scorer: Optional[PullSourceScorer] = None
        if params.has_defenses:
            self.scorer = PullSourceScorer(
                alpha=params.scoring_alpha,
                threshold=params.quarantine_threshold,
                min_pulls=params.scoring_min_pulls,
                probation_interval=params.probation_interval,
                quarantine=params.pull_scoring,
            )

        capacity = params.effective_buffer_capacity
        self.peers: List[Peer] = [
            Peer(slot, capacity) for slot in range(params.n_peers)
        ]
        self._nonempty: RandomizedSet[int] = RandomizedSet()

        self.gossip = GossipProtocol(
            params=params,
            topology=self.topology,
            rng=self._selection_rng,
            coding_rng=self._coding_rng,
            get_peer=self.peer,
            store_block=self._store_gossip_block,
            registry=self.registry,
            metrics=self.metrics,
            faults=self.faults,
            adversary=self.adversary,
        )
        self.servers = ServerPool(
            n_servers=params.n_servers,
            registry=self.registry,
            metrics=self.metrics,
            rng=self._selection_rng,
            coding_rng=self._coding_rng,
            sample_nonempty_peer=self._sample_nonempty_peer,
            rlnc_mode=self._rlnc,
            segment_selection=params.segment_selection,
            pull_policy=params.pull_policy,
            scheduler_tries=params.scheduler_tries,
            all_peers=self.peer,
            n_slots=params.n_peers,
            faults=self.faults,
            tracer=tracer,
            adversary=self.adversary,
            scorer=self.scorer,
            discounting=params.advert_discounting,
            on_quarantine=self._on_quarantine,
        )

        #: decoded original data of completed segments (RLNC+payload mode):
        #: segment_id -> (descriptor, payload rows).  Filled automatically at
        #: completion time, before extinction can discard the decoder.
        self.collected_data: Dict[
            int, Tuple[SegmentDescriptor, np.ndarray]
        ] = {}
        #: per-source accounting for postmortem analysis: maps
        #: (slot, generation) -> blocks injected / blocks delivered.  Lets an
        #: experiment ask "how much data of a peer that has since departed
        #: did the servers recover?" — the Sec. 1 resilience claim.
        self.injected_by_source: Dict[Tuple[int, int], int] = {}
        self.delivered_by_source: Dict[Tuple[int, int], int] = {}
        #: coded blocks usefully collected per source, regardless of whether
        #: the segment has completed yet — the paper's intake notion.
        self.collected_by_source: Dict[Tuple[int, int], int] = {}
        self.registry.on_complete = self._on_segment_complete
        self.registry.on_useful_pull = self._on_useful_pull
        if tracer is not None:
            self.registry.on_lost = self._on_segment_lost

        self._processes: List[PoissonProcess] = []
        #: the server pull clocks, kept separately so an outage can pause
        #: exactly them (memorylessness makes stop/start distribution-exact).
        self._server_processes: List[PoissonProcess] = []
        self._build_processes()

        self.churn = ChurnModel(
            sim=self.sim,
            rng=self._churn_rng,
            n_slots=params.n_peers,
            mean_lifetime=params.mean_lifetime,
            on_replace=self._replace_peer,
        )
        self.churn.start()

        if self.faults is not None:
            self.faults.bind(
                pause_servers=self._pause_servers,
                resume_servers=self._resume_servers,
                kill_slots=self._burst_kill,
            )
            self.faults.start()

        if self.adversary is not None:
            self.adversary.bind(
                kill_slots=self._sybil_burst,
                get_generation=lambda slot: self.peers[slot].generation,
            )
            self.adversary.start()

    # -- construction ----------------------------------------------------------

    def _build_processes(self) -> None:
        params = self.params
        for slot in range(params.n_peers):
            if self.workload is None:
                # Injection and gossip clocks run at a fixed rate for the
                # lifetime of the system (only shutdown() ever stops them),
                # so they ride the engine's handle-free fast path.
                self._processes.append(
                    PoissonProcess(
                        self.sim,
                        self._injection_rng,
                        params.segment_arrival_rate,
                        lambda slot=slot: self._inject(slot),
                        cancellable=False,
                    )
                )
            else:
                segment_size = params.segment_size
                workload = self.workload
                self._processes.append(
                    ThinnedPoissonProcess(
                        self.sim,
                        self._injection_rng,
                        max_rate=workload.max_rate / segment_size,
                        rate_fn=lambda t, w=workload, s=segment_size: w.rate(t) / s,
                        action=lambda slot=slot: self._inject(slot),
                    )
                )
            if params.gossip_rate > 0:
                self._processes.append(
                    PoissonProcess(
                        self.sim,
                        self._gossip_rng,
                        params.gossip_rate,
                        lambda slot=slot: self.gossip.tick(slot, self.sim.now),
                        cancellable=False,
                    )
                )
        for index in range(params.n_servers):
            process = PoissonProcess(
                self.sim,
                self._server_rng,
                params.per_server_rate,
                lambda index=index: self.servers.pull(index, self.sim.now),
            )
            self._processes.append(process)
            self._server_processes.append(process)

    def _random_payloads(self, descriptor: SegmentDescriptor) -> np.ndarray:
        return self._coding_rng.integers(
            0, 256, size=(descriptor.size, self.params.payload_bytes), dtype=np.uint8
        )

    # -- accessors ---------------------------------------------------------------

    def peer(self, slot: int) -> Peer:
        """Current occupant of topology *slot*."""
        return self.peers[slot]

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    def _sample_nonempty_peer(self) -> Optional[Peer]:
        if not self._nonempty:
            return None
        return self.peers[self._nonempty.sample(self._selection_rng)]

    # -- event handlers ------------------------------------------------------------

    def _inject(self, slot: int) -> None:
        """Poisson injection: a new segment of s blocks appears at the peer."""
        params = self.params
        peer = self.peers[slot]
        in_window = self.metrics.in_window
        if not peer.can_inject(params.segment_size):
            # Buffer too full for a whole segment (degree > B - s): the
            # freshly generated statistics cannot be buffered and are lost.
            self.metrics.blocked_injections.increment(in_window)
            return
        state = self.registry.create(
            source_peer=slot,
            size=params.segment_size,
            now=self.sim.now,
            generation=peer.generation,
        )
        source = (slot, peer.generation)
        self.injected_by_source[source] = (
            self.injected_by_source.get(source, 0) + params.segment_size
        )
        if self._rlnc:
            payloads = (
                self._payload_provider(state.descriptor)
                if self._payload_provider is not None
                else None
            )
            blocks = make_source_blocks(state.descriptor, payloads, self.sim.now)
        else:
            blocks = make_abstract_blocks(
                state.descriptor, params.segment_size, self.sim.now
            )
        self.metrics.injected_segments.increment(in_window)
        self.metrics.injected_blocks.increment(in_window, params.segment_size)
        if self.tracer is not None:
            self.tracer.record(
                self.sim.now,
                KIND_INJECT,
                peer=slot,
                segment=state.segment_id,
                size=params.segment_size,
            )
        for block in blocks:
            self._store_block(peer, block)

    def _store_gossip_block(self, peer: Peer, block: CodedBlock) -> None:
        """Store a gossip-received block, possibly after transfer latency.

        With zero latency (the paper's model) the block lands immediately.
        Otherwise it spends an exponential in-flight time and is re-checked
        on arrival: the target may have filled up, satisfied the segment, or
        been replaced by churn, and the segment may have gone extinct — any
        of which wastes the transmission (``gossip_undeliverable``).

        Under fault injection the transfer may also be lost outright on the
        lossy link (``gossip_loss_rate``); the sender's bandwidth is spent
        (the tick already counted a transfer) but nothing arrives.
        """
        if self.faults is not None and self.faults.drop_gossip():
            self.metrics.transfers_dropped.increment(self.metrics.in_window)
            if self.tracer is not None:
                self.tracer.record(
                    self.sim.now,
                    KIND_DROP,
                    peer=peer.slot,
                    segment=block.segment.segment_id,
                )
            return
        latency = self.params.gossip_latency
        if latency <= 0.0:
            self._land_gossip_block(peer, block)
            return
        delay = exponential(self._ttl_rng, 1.0 / latency)
        target_slot = peer.slot
        target_generation = peer.generation
        # Fire-and-forget delivery: handle-free fast path.
        self.sim.schedule_call(
            delay,
            lambda: self._arrive_gossip_block(
                target_slot, target_generation, block
            ),
        )

    def _arrive_gossip_block(
        self, slot: int, generation: int, block: CodedBlock
    ) -> None:
        """An in-flight coded block reaches its target peer."""
        peer = self.peers[slot]
        segment_id = block.segment.segment_id
        deliverable = (
            peer.generation == generation
            and segment_id in self.registry
            and peer.needs_segment(segment_id, block.segment.size)
        )
        if not deliverable:
            self.metrics.gossip_undeliverable.increment(self.metrics.in_window)
            return
        self._land_gossip_block(peer, block)

    def _land_gossip_block(self, peer: Peer, block: CodedBlock) -> None:
        """Finalize a gossip delivery with accounting and tracing."""
        self._store_block(peer, block)
        if self.tracer is not None:
            self.tracer.record(
                self.sim.now,
                KIND_GOSSIP,
                peer=peer.slot,
                segment=block.segment.segment_id,
            )

    def _store_block(self, peer: Peer, block: CodedBlock) -> None:
        """Buffer *block* at *peer* with full accounting and a TTL clock."""
        now = self.sim.now
        was_empty = peer.is_empty
        peer.add_block(block)
        state = self.registry.get(block.segment.segment_id)
        self.registry.on_block_added(state, now)
        self.metrics.total_blocks.add(now, 1)
        if was_empty:
            self._nonempty.add(peer.slot)
            self.metrics.empty_peers.add(now, -1)
        ttl = exponential(self._ttl_rng, self.params.deletion_rate)
        # TTL expiries are never cancelled (expiry itself checks liveness),
        # so they ride the handle-free fast path.
        self.sim.schedule_call(ttl, lambda: self._expire_block(peer, block))

    def _expire_block(self, peer: Peer, block: CodedBlock) -> None:
        """TTL expiry: delete the block unless churn already destroyed it."""
        if not block.alive:
            return
        block.alive = False
        if not peer.remove_block(block):
            raise RuntimeError(
                f"live block of segment {block.segment.segment_id} missing "
                f"from peer {peer.slot}'s buffer"
            )
        now = self.sim.now
        self.metrics.blocks_expired.increment(self.metrics.in_window)
        self.metrics.total_blocks.add(now, -1)
        if peer.is_empty:
            self._nonempty.discard(peer.slot)
            self.metrics.empty_peers.add(now, 1)
        state = self.registry.get(block.segment.segment_id)
        self.registry.on_block_removed(state, now)
        if self.tracer is not None:
            self.tracer.record(
                now, KIND_EXPIRE, peer=peer.slot, segment=state.segment_id
            )

    def _replace_peer(self, slot: int) -> None:
        """Churn: the slot's occupant departs; a fresh peer takes its place.

        Every block in the departed peer's buffer is destroyed — this is the
        data-loss mechanism that makes coded redundancy valuable.
        """
        now = self.sim.now
        old = self.peers[slot]
        blocks = old.all_blocks()
        for block in blocks:
            block.alive = False
            state = self.registry.get(block.segment.segment_id)
            self.registry.on_block_removed(state, now)
        lost = len(blocks)
        in_window = self.metrics.in_window
        if lost:
            self.metrics.blocks_lost_to_churn.increment(in_window, lost)
            self.metrics.total_blocks.add(now, -lost)
            self._nonempty.discard(slot)
            self.metrics.empty_peers.add(now, 1)
        self.metrics.departures.increment(in_window)
        if self.tracer is not None:
            self.tracer.record(
                now, KIND_DEPART, peer=slot, blocks_lost=float(lost)
            )
        self.peers[slot] = Peer(
            slot, self.params.effective_buffer_capacity, old.generation + 1, now
        )

    # -- fault hooks (bound into the FaultInjector) -----------------------------------

    def _pause_servers(self) -> None:
        """Outage onset: every server's pull clock stops mid-gap."""
        for process in self._server_processes:
            process.stop()

    def _resume_servers(self, elapsed: float) -> None:
        """Outage end: restart pull clocks, then fire a bounded catch-up.

        A recovering server drains its backlog as a burst of immediate
        pulls — one per pull it would have issued during the downtime, capped
        at ``catchup_limit`` (a real server rate-limits its recovery).
        """
        catchup = 0
        if self.faults is not None:
            catchup = min(
                int(elapsed * self.params.per_server_rate),
                self.faults.plan.catchup_limit,
            )
        for index, process in enumerate(self._server_processes):
            process.start()
            for _ in range(catchup):
                self.servers.pull(index, self.sim.now)

    def _burst_kill(self, slots: Sequence[int]) -> None:
        """Correlated churn burst: force-depart every slot in *slots* now."""
        for slot in slots:
            self.churn.force_depart(slot)
        self.metrics.burst_departures.increment(
            self.metrics.in_window, len(slots)
        )
        if self.tracer is not None:
            self.tracer.record(
                self.sim.now, KIND_BURST, killed=float(len(slots))
            )

    # -- adversary hooks (bound into the AdversaryInjector) -----------------------------

    def _sybil_burst(self, slots: Sequence[int]) -> None:
        """Sybil burst: each slot's occupant departs and the replacement
        identity (the post-burst generation) is adversarial."""
        for slot in slots:
            self.churn.force_depart(slot)
        self.metrics.sybil_conversions.increment(
            self.metrics.in_window, len(slots)
        )
        if self.tracer is not None:
            self.tracer.record(
                self.sim.now, KIND_SYBIL, converted=float(len(slots))
            )

    def _on_quarantine(self, slot: int, generation: int) -> None:
        """Classify a fresh quarantine as a hit or a false positive."""
        adversary = self.adversary
        if adversary is None or not adversary.is_adversarial(slot, generation):
            self.metrics.false_quarantines.increment(self.metrics.in_window)

    # -- measurement lifecycle -------------------------------------------------------

    def run(self, warmup: float, duration: float) -> MetricsReport:
        """Warm up, measure for *duration*, and return the window's report."""
        if warmup < 0 or duration <= 0:
            raise ValueError(
                f"need warmup >= 0 and duration > 0, got {warmup}, {duration}"
            )
        if warmup > 0:
            self.sim.run_until(self.sim.now + warmup)
        return self.run_phase(duration)

    def run_phase(self, duration: float) -> MetricsReport:
        """Open a fresh measurement window, run *duration*, and report.

        Successive phases let an experiment watch regimes evolve (e.g. a
        flash crowd burst, then the post-burst drain of Theorem 4).
        """
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        self.metrics.begin_window(self.sim.now)
        self.sim.run_until(self.sim.now + duration)
        report = self.metrics.report(self.sim.now, engine=self.sim.perf())
        # Under pytest (tests/conftest.py sets REPRO_AUTO_CONSISTENCY) every
        # measured phase ends with a full invariant sweep; in normal runs
        # the flag is unset and this costs one dict lookup.
        if os.environ.get("REPRO_AUTO_CONSISTENCY"):
            self.consistency_check()
        return report

    def run_until(self, end_time: float) -> None:
        """Advance raw simulation time without touching metric windows."""
        self.sim.run_until(end_time)

    def engine_perf(self) -> "EnginePerf":
        """Event-engine perf counters for this run (see Simulator.perf)."""
        return self.sim.perf()

    def shutdown(self) -> None:
        """Stop every recurring clock (Poisson processes, churn, faults).

        Call when a long-lived process runs many systems against shared
        tooling and wants this one's clocks silenced; a shut-down system can
        still be inspected but will not advance further state.  Fast-path
        (non-cancellable) clocks may each leave one stale queue entry that
        drains as a no-op if the simulator is ever run further.
        """
        for process in self._processes:
            process.stop()
        self.churn.drain()
        if self.faults is not None:
            self.faults.stop()
        if self.adversary is not None:
            self.adversary.stop()

    # -- completion archive (RLNC + payload mode) --------------------------------------

    def _on_useful_pull(self, state: SegmentState) -> None:
        """Attribute one usefully collected coded block to its source."""
        descriptor = state.descriptor
        source = (descriptor.source_peer, descriptor.generation)
        self.collected_by_source[source] = (
            self.collected_by_source.get(source, 0) + 1
        )
        if self.tracer is not None:
            self.tracer.record(
                self.sim.now,
                KIND_COLLECT,
                peer=descriptor.source_peer,
                segment=state.segment_id,
                collected=float(state.collected),
            )

    def _on_segment_complete(self, state: SegmentState) -> None:
        """Completion hook: per-source accounting plus payload archiving.

        Runs at the completion instant, while the decoder is still alive —
        a completed segment's blocks keep circulating and eventually all
        expire, at which point the registry drops the entry.
        """
        descriptor = state.descriptor
        source = (descriptor.source_peer, descriptor.generation)
        self.delivered_by_source[source] = (
            self.delivered_by_source.get(source, 0) + descriptor.size
        )
        if self.tracer is not None:
            self.tracer.record(
                self.sim.now,
                KIND_COMPLETE,
                peer=descriptor.source_peer,
                segment=state.segment_id,
                delay=self.sim.now - descriptor.injected_at,
            )
        if state.decoder is not None and self._payload_provider is not None:
            if state.segment_id not in self.collected_data:
                self.collected_data[state.segment_id] = (
                    descriptor,
                    state.decoder.decode(),
                )

    def _on_segment_lost(self, state: SegmentState) -> None:
        """Tracing hook: a segment went extinct before the servers got it."""
        if self.tracer is not None:
            self.tracer.record(
                self.sim.now,
                KIND_LOST,
                peer=state.descriptor.source_peer,
                segment=state.segment_id,
                collected=float(state.collected),
            )

    # -- postmortem analysis -----------------------------------------------------------

    def postmortem(self) -> PostmortemReport:
        """Recovery accounting at the current instant, split by departure.

        A source generation (slot, g) is *departed* when the slot's current
        occupant has a higher generation.  Delivered counts completed
        segments; recoverable counts live incomplete segments the servers
        can still finish (network degree >= blocks still missing).
        """
        recoverable_by_source: Dict[Tuple[int, int], int] = {}
        for state in self.registry.live_states():
            if state.is_complete:
                continue
            missing = state.size - state.collected
            if state.network_degree >= missing:
                descriptor = state.descriptor
                source = (descriptor.source_peer, descriptor.generation)
                recoverable_by_source[source] = (
                    recoverable_by_source.get(source, 0) + state.size
                )
        departed = SourceRecovery()
        live = SourceRecovery()
        for source, injected in sorted(self.injected_by_source.items()):
            slot, generation = source
            bucket = (
                departed if generation < self.peers[slot].generation else live
            )
            bucket.injected += injected
            bucket.delivered += self.delivered_by_source.get(source, 0)
            bucket.recoverable += recoverable_by_source.get(source, 0)
            bucket.collected += self.collected_by_source.get(source, 0)
        return PostmortemReport(departed=departed, live=live)

    # -- diagnostics ----------------------------------------------------------------------

    def peer_degree_histogram(self) -> Dict[int, int]:
        """Map degree i -> number of peers holding i blocks (Y_i of Sec. 3)."""
        histogram: Dict[int, int] = {}
        for peer in self.peers:
            histogram[peer.block_count] = histogram.get(peer.block_count, 0) + 1
        return histogram

    def rescaled_peer_degrees(self) -> List[float]:
        """The z_i vector: fraction of peers at each degree 0..B."""
        histogram = self.peer_degree_histogram()
        capacity = self.params.effective_buffer_capacity
        n = self.params.n_peers
        return [histogram.get(i, 0) / n for i in range(capacity + 1)]

    def segment_degree_histogram(self) -> Dict[int, int]:
        """Map degree i -> number of live segments with i blocks (X_i)."""
        return self.registry.degree_histogram()

    def total_blocks_in_network(self) -> int:
        """Total live blocks (edge count E of the bipartite graph)."""
        return sum(peer.block_count for peer in self.peers)

    def empty_peer_count(self) -> int:
        """Peers with empty buffers (the z₀ population)."""
        return sum(1 for peer in self.peers if peer.is_empty)

    def consistency_check(self) -> None:
        """Verify cross-component invariants; raises AssertionError on drift.

        Intended for tests: edge counts agree between the peer side, the
        segment side, and the time-weighted metric state.  Delegates to the
        chaos layer's end-state monitors (:mod:`repro.chaos.monitors`) so
        this test-facing entry point and the mid-run chaos checks share one
        implementation and cannot drift; the violations they raise subclass
        ``AssertionError``, preserving this method's historical contract.
        """
        # Late import: chaos sits above core in the layer diagram.
        from repro.chaos.monitors import end_state_monitors

        now = self.sim.now
        for monitor in end_state_monitors():
            monitor.check(self, now)

    def record_payloads(self) -> Dict[int, np.ndarray]:
        """Archive each injected segment's original payload rows by id.

        Wraps the payload provider so every future injection also stores a
        copy of its source rows in the returned dict — the ground truth the
        chaos layer's decode-fidelity monitor compares completed segments
        against.  The wrapper draws no extra randomness, so a recorded run
        is event-for-event identical to an unrecorded one.  Call before the
        first injection; requires RLNC mode with payloads.
        """
        inner = self._payload_provider
        if inner is None:
            raise ValueError(
                "payload recording requires mode='rlnc' with payload_bytes > 0"
            )
        originals: Dict[int, np.ndarray] = {}

        def recording_provider(descriptor: SegmentDescriptor) -> np.ndarray:
            payloads = inner(descriptor)
            originals[descriptor.segment_id] = payloads.copy()
            return payloads

        self._payload_provider = recording_provider
        return originals
