"""repro — indirect large-scale P2P data collection via network coding.

A full reproduction of *"Circumventing Server Bottlenecks: Indirect
Large-Scale P2P Data Collection"* (Di Niu and Baochun Li, ICDCS 2008):

- the indirect collection protocol itself — RLNC gossip dissemination with
  TTL-aged bounded buffers and coupon-collector server pulls
  (:class:`repro.CollectionSystem`),
- the traditional direct-pull baseline it replaces
  (:class:`repro.DirectCollectionSystem`),
- the paper's analytical machinery — the ODE systems of Sec. 3 and
  Theorems 1-4 of Sec. 4 (:mod:`repro.analysis`),
- the substrates: GF(2^8) network coding (:mod:`repro.coding`), a
  discrete-event simulator with churn and overlay topologies
  (:mod:`repro.sim`), and realistic statistics payloads/workloads
  (:mod:`repro.stats`).

Quickstart::

    from repro import Parameters, CollectionSystem

    params = Parameters(
        n_peers=200,
        arrival_rate=20.0,      # lambda: blocks/peer/unit time
        gossip_rate=10.0,       # mu
        deletion_rate=1.0,      # gamma
        normalized_capacity=8.0,  # c = c_s * N_s / N
        segment_size=20,        # s
    )
    report = CollectionSystem(params, seed=1).run(warmup=15.0, duration=20.0)
    print(report.normalized_throughput)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
figure-by-figure reproduction record.
"""

from repro.analysis import (
    AnalyticalPoint,
    BipartiteProcess,
    CollectionODE,
    ODEConfig,
    SteadyState,
    analyze,
    theorem1_storage,
    theorem2_throughput,
    theorem2_throughput_s1,
    theorem3_block_delay,
    theorem4_saved_data,
)
from repro.analysis.transient import Trajectory, TransientCollectionODE
from repro.analysis.validation import ValidationResult, validate_report
from repro.core import (
    CollectionSystem,
    DirectCollectionSystem,
    Parameters,
)
from repro.core.push import PushCollectionSystem
from repro.core.system import PostmortemReport, SourceRecovery
from repro.sim.trace import Tracer
from repro.sim import (
    CompleteTopology,
    MetricsReport,
    Simulator,
    erdos_renyi_topology,
    random_regular_topology,
)
from repro.stats import (
    ConstantWorkload,
    FlashCrowdWorkload,
    RecordCodec,
    ShutoffWorkload,
    StatsRecord,
)

__version__ = "1.0.0"

__all__ = [
    "AnalyticalPoint",
    "BipartiteProcess",
    "CollectionODE",
    "ODEConfig",
    "SteadyState",
    "analyze",
    "theorem1_storage",
    "theorem2_throughput",
    "theorem2_throughput_s1",
    "theorem3_block_delay",
    "theorem4_saved_data",
    "CollectionSystem",
    "DirectCollectionSystem",
    "Parameters",
    "PostmortemReport",
    "PushCollectionSystem",
    "SourceRecovery",
    "Tracer",
    "Trajectory",
    "TransientCollectionODE",
    "CompleteTopology",
    "MetricsReport",
    "Simulator",
    "erdos_renyi_topology",
    "random_regular_topology",
    "ConstantWorkload",
    "FlashCrowdWorkload",
    "RecordCodec",
    "ShutoffWorkload",
    "StatsRecord",
    "__version__",
]
