"""A live peer node: the Sec. 2 protocol as asyncio tasks over real TCP.

One :class:`LivePeer` wraps the *same* :class:`repro.core.peer.Peer`
buffer model the simulator uses and drives it with four long-lived tasks:

- **injection** — at rate λ/s, group ``s`` fresh payload rows into a
  segment, systematically encode them (:func:`make_source_blocks`), and
  buffer the source blocks;
- **gossip** — at rate μ, re-encode one buffered segment with the GF(256)
  kernels (:func:`SegmentHolding.make_coded_block`) and push the coded
  block to a uniformly drawn peer, with the simulator's rejection-sampled
  target eligibility realized as an OFFER/OFFER-REPLY round-trip;
- **expiry** — per-block TTL at rate γ via a deadline heap;
- **control** — the registry connection: directory/start/mark/stop
  downstream, buffer status upstream, metrics on request, RESET
  (disconnect-burst) teardown.

Every random draw comes from named :class:`SeedSequenceRegistry`
substreams keyed by the peer's slot, so a swarm is reproducible from one
root seed whether peers run as tasks in one process or as separate
processes on separate hosts.
"""

from __future__ import annotations

import asyncio
import heapq
import random
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.coding.block import CodedBlock, SegmentDescriptor, make_source_blocks
from repro.core.params import SELECTION_UNIFORM, Parameters
from repro.core.peer import Peer
from repro.live import ports, wire
from repro.live.clock import LiveClock, PoissonSchedule
from repro.live.framing import Frame, FrameError, FrameTruncated
from repro.live.livemetrics import PeerStats
from repro.live.ports import Backoff
from repro.live.transport import (
    ConnectionCache,
    FramedConnection,
    NetemShim,
    POLLUTER_STREAM,
)
from repro.sim.rng import SeedSequenceRegistry, exponential

#: Outbound gossip connections kept per peer; bounds the swarm's total
#: descriptor count to O(N · GOSSIP_CACHE) instead of O(N^2).
GOSSIP_CACHE = 4

#: Segment ids are globally unique without coordination: slot << SHIFT | n.
_SEGMENT_SHIFT = 32

#: Wall seconds between heartbeat frames to the registry.
HEARTBEAT_WALL = 2.0

#: Wall seconds a peer keeps re-dialing a vanished registry before it
#: gives up and shuts down (covers kill + supervisor backoff + rebind).
DEFAULT_RECONNECT_DEADLINE = 20.0


class LivePeer:
    """One peer node of a live swarm (in-process task or standalone)."""

    def __init__(
        self,
        slot: Optional[int],
        params: Optional[Parameters],
        seed: Optional[int],
        server_host: str,
        server_port: int,
        clock: Optional[LiveClock] = None,
        time_scale: float = 1.0,
        listen_host: str = "127.0.0.1",
        reconnect_deadline: float = DEFAULT_RECONNECT_DEADLINE,
    ) -> None:
        self.slot = -1 if slot is None else slot
        self._requested_slot = slot
        self.params: Optional[Parameters] = None
        self.generation = 0
        self._server_addr = (server_host, server_port)
        self._listen_host = listen_host
        self._clock_given = clock is not None
        self.clock: LiveClock = (
            clock if clock is not None else LiveClock(time_scale)
        )
        self.stats = PeerStats()
        if params is not None:
            if seed is None:
                raise ValueError("a pre-configured peer needs its seed")
            self._configure(params, seed)
        self.directory: Dict[int, Tuple[str, int]] = {}
        self._digests: Dict[int, str] = {}
        self._ttl_heap: List[Tuple[float, int, CodedBlock]] = []
        self._ttl_seq = 0
        self._ttl_wakeup = asyncio.Event()
        self._segment_seq = 0
        self._listener: Optional[asyncio.AbstractServer] = None
        self.listen_port = 0
        self._control: Optional[FramedConnection] = None
        self._cache = ConnectionCache(self._open_gossip, GOSSIP_CACHE)
        self._protocol_tasks: List["asyncio.Task[None]"] = []
        self._control_task: Optional["asyncio.Task[None]"] = None
        self._heartbeat_task: Optional["asyncio.Task[None]"] = None
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self._status_event = asyncio.Event()
        self._status_sent_nonempty = False
        self._running = False
        self.stopped = asyncio.Event()
        self.reconnect_deadline = reconnect_deadline
        #: registry reconnects survived by this peer process.
        self.reconnects = 0
        self._marked = False
        self._backoff_rng: Optional[random.Random] = None

    def _configure(self, params: Parameters, seed: int) -> None:
        """Bind the protocol state once slot, params, and seed are known."""
        if params.payload_bytes <= 0:
            raise ValueError(
                "the live runtime moves real bytes: set mode='rlnc' and "
                "payload_bytes > 0"
            )
        if params.has_adversary:
            raise ValueError("the live runtime does not run adversary plans")
        if self.slot < 0:
            raise RuntimeError("cannot configure a peer with no slot yet")
        self.params = params
        slot = self.slot
        seeds = SeedSequenceRegistry(seed)
        self._events_rng = seeds.python(f"live:peer{slot}:events")
        self._select_rng = seeds.python(f"live:peer{slot}:select")
        self._coding_rng = seeds.numpy(f"live:peer{slot}:coding")
        self._payload_rng = seeds.numpy(f"live:peer{slot}:payload")
        self._backoff_rng = seeds.python(f"live:peer{slot}:backoff")
        self.netem = NetemShim(
            params.faults,
            params.n_peers,
            seeds.python(POLLUTER_STREAM),
            seeds.python(f"live:peer{slot}:netem"),
        )
        self.core = Peer(slot, params.effective_buffer_capacity)

    @property
    def cfg(self) -> Parameters:
        """The session parameters (raises until configuration is known)."""
        params = self.params
        if params is None:
            raise RuntimeError(
                "peer is not configured yet: no local Parameters and no "
                "WELCOME received"
            )
        return params

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener, register with the logging server.

        A peer constructed without local configuration (the standalone
        ``repro live peer`` entry point) adopts the session parameters,
        seed, and time scale the WELCOME frame carries.
        """
        self._listener, self.listen_port = await ports.start_server(
            self._handle_connection, self._listen_host
        )
        await self._dial_control()
        self._control_task = asyncio.create_task(
            self._control_loop(), name=f"peer{self.slot}:control"
        )
        self._heartbeat_task = asyncio.create_task(
            self._heartbeat_loop(), name=f"peer{self.slot}:heartbeat"
        )

    async def _dial_control(self) -> None:
        """Dial the registry and complete the HELLO/WELCOME handshake.

        Used for both the initial registration and every reconnect; on a
        reconnect the HELLO carries a ``resume`` stanza replaying the
        peer's buffer state so the server's candidate set is correct
        before the first STATUS edge.
        """
        conn = await FramedConnection.open(*self._server_addr)
        try:
            hello: Dict[str, object] = {
                "type": wire.MSG_HELLO,
                "slot": (
                    self.slot if self.slot >= 0 else self._requested_slot
                ),
                "host": self._listen_host,
                "port": self.listen_port,
            }
            if self.params is not None:
                hello["resume"] = {"nonempty": not self.core.is_empty}
            await conn.send(hello)
            welcome = await conn.read()
            if welcome is None or welcome.type != wire.MSG_WELCOME:
                raise ConnectionError(
                    f"peer {self.slot}: expected WELCOME, got "
                    f"{None if welcome is None else welcome.type!r}"
                )
        except BaseException:
            await conn.close()
            raise
        self.slot = int(welcome.header["slot"])
        if self.params is None:
            if not self._clock_given and not self.clock.started:
                self.clock = LiveClock(float(welcome.header["time_scale"]))
            self._configure(
                wire.params_from_wire(welcome.header["params"]),
                int(welcome.header["seed"]),
            )
        epoch = welcome.header.get("epoch")
        if epoch is not None and not self.clock.started:
            # A restarted server restores the swarm's original epoch; a
            # rejoining peer adopts it directly instead of waiting for a
            # START broadcast that already happened.
            self.clock.start(float(epoch))
        old = self._control
        self._control = conn
        if old is not None:
            await old.close()
        # Force a fresh STATUS edge on the new connection.
        self._status_sent_nonempty = False
        self._status_event.set()

    async def close(self) -> None:
        """Tear everything down; leaves no tasks or transports behind."""
        self._stop_protocol()
        for task in [self._control_task, self._heartbeat_task,
                     *self._protocol_tasks, *self._conn_tasks]:
            if task is not None:
                task.cancel()
        await asyncio.gather(
            *(t for t in [self._control_task, self._heartbeat_task,
                          *self._protocol_tasks, *self._conn_tasks]
              if t is not None),
            return_exceptions=True,
        )
        self._protocol_tasks.clear()
        self._conn_tasks.clear()
        await self._cache.close_all()
        if self._control is not None:
            await self._control.close()
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        self.stopped.set()

    # -- control plane ------------------------------------------------------

    async def _control_loop(self) -> None:
        """Serve the registry connection; re-dial when it is torn down.

        Distinguishes a deliberate goodbye (BYE frame — the session is
        over) from a lost transport (mid-frame truncation, abrupt EOF,
        socket error — the server crashed or the network broke): the
        former stops the peer, the latter enters the bounded-backoff
        reconnect path and resumes the same session.
        """
        try:
            while True:
                outcome = await self._serve_control()
                if outcome == "bye":
                    break
                if not await self._reconnect():
                    break
        finally:
            self._stop_protocol()
            self.stopped.set()

    async def _serve_control(self) -> str:
        """Read control frames until goodbye ("bye") or loss ("lost")."""
        conn = self._control
        assert conn is not None
        try:
            while True:
                frame = await conn.read()
                if frame is None:
                    # Abrupt EOF without BYE: the server vanished.
                    return "lost"
                if frame.type == wire.MSG_BYE:
                    return "bye"
                await self._handle_control(frame)
        except FrameTruncated:
            return "lost"
        except (ConnectionError, OSError):
            return "lost"
        except FrameError:
            # Garbage on the control stream is a protocol violation, not
            # a crash; re-dialing would just replay it.
            return "bye"

    async def _reconnect(self) -> bool:
        """Re-dial the registry under the unified backoff policy."""
        policy = Backoff(
            initial=0.1,
            cap=2.0,
            attempts=0,
            deadline=self.reconnect_deadline,
            rng=self._backoff_rng,
        )
        try:
            await policy.retry(
                self._dial_control,
                retry_on=(ConnectionError, FrameError, OSError),
            )
        except (ConnectionError, FrameError, OSError):
            return False
        self.reconnects += 1
        return True

    async def _heartbeat_loop(self) -> None:
        """Beacon liveness (and the buffer bit) to the registry.

        Heartbeats ride the control connection on a wall-clock period so
        the server can distinguish a stopped/killed peer from a merely
        quiet one; send failures are ignored — the control loop owns
        reconnection.
        """
        while True:
            await asyncio.sleep(HEARTBEAT_WALL)
            conn = self._control
            if conn is None or self.params is None:
                continue
            try:
                await conn.send({
                    "type": wire.MSG_HEARTBEAT,
                    "slot": self.slot,
                    "nonempty": not self.core.is_empty,
                })
            except (ConnectionError, OSError):
                pass

    async def _handle_control(self, frame: Frame) -> None:
        assert self._control is not None
        kind = frame.type
        if kind == wire.MSG_DIRECTORY:
            entries = {
                int(slot): (str(host), int(port))
                for slot, (host, port) in frame.header["peers"].items()
            }
            if frame.header.get("partial", False):
                # Incremental update: a peer re-registered (possibly on a
                # new port); drop any cached connection to its old address.
                for slot, addr in entries.items():
                    if self.directory.get(slot) != addr:
                        await self._cache.drop(slot)
                self.directory.update(entries)
            else:
                self.directory = entries
        elif kind == wire.MSG_START:
            if not self.clock.started:
                loop = asyncio.get_running_loop()
                self.clock.start(loop.time() + float(frame.header.get("in", 0.0)))
            self._start_protocol()
        elif kind == wire.MSG_RESUME:
            # Sent by a (restarted) server to a peer joining a running
            # swarm: no START will follow, begin immediately on the
            # already-adopted epoch.
            if self.clock.started:
                self._start_protocol()
            if frame.header.get("marked", False) and not self._marked:
                self._marked = True
                self.stats.begin_window(self.clock.now())
        elif kind == wire.MSG_MARK:
            self._marked = True
            self.stats.begin_window(self.clock.now())
        elif kind == wire.MSG_STOP:
            self._stop_protocol()
        elif kind == wire.MSG_RESET:
            await self._burst_reset()
        elif kind == wire.MSG_METRICS:
            now = self.clock.now()
            await self._control.send({
                "type": wire.MSG_METRICS_REPLY,
                "slot": self.slot,
                "req": frame.header.get("req"),
                "stats": self.stats.to_wire(now),
            })

    def _start_protocol(self) -> None:
        if self._running:
            return
        self._running = True
        spawn = asyncio.create_task
        name = f"peer{self.slot}"
        self._protocol_tasks = [
            spawn(self._injection_loop(), name=f"{name}:inject"),
            spawn(self._expiry_loop(), name=f"{name}:expiry"),
            spawn(self._status_loop(), name=f"{name}:status"),
        ]
        if self.cfg.gossip_rate > 0:
            self._protocol_tasks.append(
                spawn(self._gossip_loop(), name=f"{name}:gossip")
            )

    def _stop_protocol(self) -> None:
        if not self._running:
            return
        self._running = False
        for task in self._protocol_tasks:
            task.cancel()

    # -- buffer bookkeeping -------------------------------------------------

    def _store_block(self, block: CodedBlock, digest: str) -> None:
        """Buffer one live block: core model + TTL clock + status + stats."""
        now = self.clock.now()
        self.core.add_block(block)
        self._digests.setdefault(block.segment.segment_id, digest)
        ttl = exponential(self._events_rng, self.cfg.deletion_rate)
        heapq.heappush(
            self._ttl_heap, (now + ttl, self._ttl_seq, block)
        )
        self._ttl_seq += 1
        self._ttl_wakeup.set()
        self._after_buffer_change(now)

    def _after_buffer_change(self, now: float) -> None:
        self.stats.on_buffer_change(now, self.core.block_count)
        self._status_event.set()

    async def _status_loop(self) -> None:
        """Push empty/nonempty transitions to the registry (deduplicated).

        Survives control-connection loss: a failed send re-arms the event
        and the next attempt goes out on whatever connection the reconnect
        path installed (``_dial_control`` resets the dedup state so the
        new server always gets a fresh edge).
        """
        while True:
            await self._status_event.wait()
            self._status_event.clear()
            conn = self._control
            if conn is None:
                continue
            nonempty = not self.core.is_empty
            if nonempty == self._status_sent_nonempty:
                continue
            try:
                await conn.send({
                    "type": wire.MSG_STATUS,
                    "slot": self.slot,
                    "nonempty": nonempty,
                })
            except (ConnectionError, OSError):
                # Mid-reconnect; re-arm and let the next edge retry.
                self._status_event.set()
                await asyncio.sleep(0.05)
                continue
            self._status_sent_nonempty = nonempty

    # -- protocol loops -----------------------------------------------------

    async def _injection_loop(self) -> None:
        schedule = PoissonSchedule(
            self.clock, self._events_rng, self.cfg.segment_arrival_rate
        )
        s = self.cfg.segment_size
        while True:
            await schedule.wait()
            # Timestamp with the realized clock reading, not the scheduled
            # event time: a backlogged schedule fires late, and delays are
            # measured between *actual* injection and *actual* completion.
            at = self.clock.now()
            if not self.core.can_inject(s):
                self.stats.blocked_injections += 1
                continue
            segment_id = (self.slot << _SEGMENT_SHIFT) | self._segment_seq
            self._segment_seq += 1
            descriptor = SegmentDescriptor(
                segment_id=segment_id,
                source_peer=self.slot,
                size=s,
                injected_at=at,
                generation=self.generation,
            )
            payloads = self._payload_rng.integers(
                0, 256, size=(s, self.cfg.payload_bytes), dtype=np.uint8
            )
            digest = wire.payload_digest(payloads.tobytes())
            for block in make_source_blocks(descriptor, payloads, created_at=at):
                self._store_block(block, digest)
            self.stats.injected_segments += 1
            self.stats.injected_blocks += s

    async def _gossip_loop(self) -> None:
        schedule = PoissonSchedule(
            self.clock, self._events_rng, self.cfg.gossip_rate
        )
        uniform = self.cfg.segment_selection == SELECTION_UNIFORM
        while True:
            at = await schedule.wait()
            if self.core.is_empty:
                # Idle tick: the mu-clock ran with nothing to send.
                continue
            if uniform:
                segment_id = self.core.sample_segment(self._select_rng)
            else:
                segment_id = self.core.sample_segment_proportional(
                    self._select_rng
                )
            holding = self.core.holdings[segment_id]
            block = holding.make_coded_block(self._coding_rng, at)
            self.netem.maybe_pollute(self.slot, holding, block)
            digest = self._digests.get(segment_id, "")
            await self._gossip_block(segment_id, block, digest)

    async def _gossip_block(
        self, segment_id: int, block: CodedBlock, digest: str
    ) -> None:
        """Rejection-sample an eligible target over the wire and send."""
        n = self.cfg.n_peers
        size = block.segment.size
        for _ in range(self.cfg.gossip_target_tries):
            if n < 2:
                break
            target = self._select_rng.randrange(n - 1)
            if target >= self.slot:
                target += 1
            try:
                conn = await self._cache.get(target)
                self.stats.offers_sent += 1
                reply = await conn.request({
                    "type": wire.MSG_OFFER,
                    "segment_id": segment_id,
                    "size": size,
                })
            except (ConnectionError, FrameError, OSError):
                await self._cache.drop(target)
                continue
            if reply.type != wire.MSG_OFFER_REPLY:
                await self._cache.drop(target)
                continue
            if not reply.header.get("want", False):
                continue
            header, payload = wire.block_to_wire(wire.MSG_BLOCK, block, digest)
            try:
                await conn.send(header, payload)
            except (ConnectionError, OSError):
                await self._cache.drop(target)
                continue
            # Counted at the sender on send, like the simulator's tick;
            # the receiver may still drop it on the lossy link.
            self.stats.gossip_transfers += 1
            return
        self.stats.gossip_no_target += 1

    async def _expiry_loop(self) -> None:
        """Drive per-block TTL expiry off the deadline heap."""
        heap = self._ttl_heap
        while True:
            if not heap:
                await self._ttl_wakeup.wait()
                self._ttl_wakeup.clear()
                continue
            deadline, _, block = heap[0]
            if not block.alive:
                heapq.heappop(heap)
                continue
            now = self.clock.now()
            if deadline > now:
                try:
                    await asyncio.wait_for(
                        self._ttl_wakeup.wait(),
                        timeout=self.clock.wall_interval(deadline - now),
                    )
                except asyncio.TimeoutError:
                    pass
                else:
                    self._ttl_wakeup.clear()
                continue
            heapq.heappop(heap)
            block.alive = False
            if self.core.remove_block(block):
                self.stats.blocks_expired += 1
                self._after_buffer_change(self.clock.now())

    async def _burst_reset(self) -> None:
        """Disconnect-burst: wipe the buffer, bump the generation, drop
        every outbound connection mid-stream."""
        lost = self.core.block_count
        for block in self.core.all_blocks():
            block.alive = False
        self.generation += 1
        self.core = Peer(
            self.slot,
            self.cfg.effective_buffer_capacity,
            generation=self.generation,
            joined_at=self.clock.now(),
        )
        self._digests.clear()
        self.stats.blocks_lost_to_churn += lost
        await self._cache.close_all()
        self._after_buffer_change(self.clock.now())

    # -- data plane (incoming) ----------------------------------------------

    async def _open_gossip(self, target: int) -> FramedConnection:
        try:
            host, port = self.directory[target]
        except KeyError:
            raise ConnectionError(f"no directory entry for slot {target}")
        return await FramedConnection.open(host, port, attempts=2)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one inbound connection (gossip sender or pulling server)."""
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        conn = FramedConnection(reader, writer)
        try:
            while True:
                frame = await conn.read()
                if frame is None:
                    break
                kind = frame.type
                if kind == wire.MSG_OFFER:
                    await self._serve_offer(conn, frame)
                elif kind == wire.MSG_BLOCK:
                    self._receive_block(frame)
                elif kind == wire.MSG_PULL:
                    await self._serve_pull(conn)
                # Unknown types are ignored (forward compatibility).
        except (FrameError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # Teardown cancels handler tasks; swallow so the streams
            # machinery sees a clean exit, not an unhandled cancellation.
            pass
        finally:
            try:
                await conn.close()
            except asyncio.CancelledError:
                pass
            # Deregister only after the transport is down: close() gathers
            # this set, so a task must stay visible until fully drained.
            self._conn_tasks.discard(task)

    async def _serve_offer(self, conn: FramedConnection, frame: Frame) -> None:
        try:
            segment_id = int(frame.header["segment_id"])
            size = int(frame.header["size"])
        except (KeyError, TypeError, ValueError):
            await conn.send({"type": wire.MSG_OFFER_REPLY, "want": False})
            return
        want = self.core.needs_segment(segment_id, size)
        await conn.send({"type": wire.MSG_OFFER_REPLY, "want": bool(want)})

    def _receive_block(self, frame: Frame) -> None:
        """A gossiped coded block arrived (possibly on a lossy link)."""
        if self.netem.drop_gossip():
            self.stats.transfers_dropped += 1
            return
        block = wire.block_from_wire(frame.header, frame.payload)
        segment = block.segment
        if not self.core.needs_segment(segment.segment_id, segment.size):
            # The buffer filled up or the segment got satisfied between the
            # OFFER round-trip and delivery: the transmission is wasted.
            self.stats.gossip_undeliverable += 1
            return
        self._store_block(block, wire.block_digest_of(frame.header))

    async def _serve_pull(self, conn: FramedConnection) -> None:
        """Answer one logging-server coupon pull.

        The peer draws the segment itself (uniform over buffered blocks or
        uniform over segments, per ``segment_selection``) — the same
        distribution the simulator realizes by letting the server sample
        the peer's buffer directly.
        """
        if self.core.is_empty:
            await conn.send({"type": wire.MSG_PULL_EMPTY, "slot": self.slot})
            return
        if self.cfg.segment_selection == SELECTION_UNIFORM:
            segment_id = self.core.sample_segment(self._select_rng)
        else:
            segment_id = self.core.sample_segment_proportional(self._select_rng)
        holding = self.core.holdings[segment_id]
        block = holding.make_coded_block(self._coding_rng, self.clock.now())
        self.netem.maybe_pollute(self.slot, holding, block)
        header, payload = wire.block_to_wire(
            wire.MSG_PULL_BLOCK,
            block,
            self._digests.get(segment_id, ""),
            slot=self.slot,
        )
        await conn.send(header, payload)
        self.stats.pull_blocks_served += 1
