"""Live-runtime measurement: per-peer stats, collector stats, aggregation.

The live runtime reports on the *same axes* as the simulator
(:class:`repro.sim.metrics.MetricsReport`): every timestamp is simulated
time (via :class:`repro.live.clock.LiveClock`), time-weighted state reuses
the simulator's exact-integration :class:`WindowedAverage`, and
:func:`aggregate_report` folds one swarm's peer and collector summaries
into a flat dict whose keys match the report fields — so sim-vs-live
cross-validation (:mod:`repro.live.crossval`) is a direct field-by-field
comparison, no unit conversion anywhere.

Split of responsibilities (mirrors who can observe what in a real
deployment):

- each **peer** tracks its own injection/gossip/expiry counters and its
  buffer-occupancy time average, reported over the control connection as a
  ``metrics-reply`` frame;
- the **collector** (logging-server process) tracks pull accounting,
  decode completions, per-block delays, and outage downtime;
- the **harness** aggregates both sides over the measurement window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.params import Parameters
from repro.sim.metrics import WindowedAverage
from repro.util.summary import percentile


@dataclass
class PeerStats:
    """One live peer's measurement-window counters (reset at MARK)."""

    injected_segments: int = 0
    injected_blocks: int = 0
    blocked_injections: int = 0
    gossip_transfers: int = 0
    gossip_no_target: int = 0
    gossip_undeliverable: int = 0
    offers_sent: int = 0
    pull_blocks_served: int = 0
    transfers_dropped: int = 0
    blocks_expired: int = 0
    blocks_lost_to_churn: int = 0
    occupancy: WindowedAverage = field(default_factory=WindowedAverage)
    empty: WindowedAverage = field(
        default_factory=lambda: WindowedAverage(1.0)
    )

    def begin_window(self, now: float) -> None:
        """Discard warmup statistics; measurements start at *now*."""
        for name in self._counter_names():
            setattr(self, name, 0)
        self.occupancy.reset(now)
        self.empty.reset(now)

    def on_buffer_change(self, now: float, block_count: int) -> None:
        """Record the peer's new buffer level at sim time *now*."""
        self.occupancy.update(now, float(block_count))
        self.empty.update(now, 1.0 if block_count == 0 else 0.0)

    @staticmethod
    def _counter_names() -> Sequence[str]:
        return (
            "injected_segments",
            "injected_blocks",
            "blocked_injections",
            "gossip_transfers",
            "gossip_no_target",
            "gossip_undeliverable",
            "offers_sent",
            "pull_blocks_served",
            "transfers_dropped",
            "blocks_expired",
            "blocks_lost_to_churn",
        )

    def to_wire(self, now: float) -> Dict[str, float]:
        """Flatten for a ``metrics-reply`` frame header."""
        out: Dict[str, float] = {
            name: float(getattr(self, name)) for name in self._counter_names()
        }
        out["mean_occupancy"] = self.occupancy.average(now)
        out["empty_fraction"] = self.empty.average(now)
        return out


@dataclass
class CollectorStats:
    """The logging-server side's measurement-window state."""

    pulls: int = 0
    useful_pulls: int = 0
    redundant_pulls: int = 0
    idle_pulls: int = 0
    segments_completed: int = 0
    delivered_original_blocks: int = 0
    transfers_dropped: int = 0
    blocks_rejected_polluted: int = 0
    burst_departures: int = 0
    #: live-only: pulls answered PULL-EMPTY by a peer that emptied between
    #: candidate selection and service (impossible in the simulator, where
    #: selection and transfer are atomic; counted as idle in the report).
    pull_empty_races: int = 0
    #: live-only: end-to-end decode verification against the source digest.
    hash_verified: int = 0
    hash_failures: int = 0
    servers_down: WindowedAverage = field(default_factory=WindowedAverage)
    delay_samples: List[float] = field(default_factory=list)

    def begin_window(self, now: float) -> None:
        """Discard warmup statistics; measurements start at *now*."""
        for name in self._counter_names():
            setattr(self, name, 0)
        self.servers_down.reset(now)
        self.delay_samples = []

    @staticmethod
    def _counter_names() -> Sequence[str]:
        return (
            "pulls",
            "useful_pulls",
            "redundant_pulls",
            "idle_pulls",
            "segments_completed",
            "delivered_original_blocks",
            "transfers_dropped",
            "blocks_rejected_polluted",
            "burst_departures",
            "pull_empty_races",
            "hash_verified",
            "hash_failures",
        )

    def on_segment_completed(
        self, now: float, injected_at: float, size: int
    ) -> None:
        """A segment became decodable at the collector at *now*."""
        self.segments_completed += 1
        self.delay_samples.append(now - injected_at)
        self.delivered_original_blocks += size

    def summary(self, now: float, window: float) -> Dict[str, Any]:
        """Flatten the collector side for aggregation."""
        out: Dict[str, Any] = {
            name: getattr(self, name) for name in self._counter_names()
        }
        out["outage_time"] = self.servers_down.average(now) * window
        out["delay_samples_list"] = list(self.delay_samples)
        return out


def aggregate_report(
    params: Parameters,
    window: float,
    collector: Mapping[str, Any],
    peers: Sequence[Mapping[str, float]],
    extras: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Fold one swarm's summaries into a MetricsReport-shaped dict.

    Field names and formulas mirror
    :meth:`repro.sim.metrics.MetricsCollector.report` exactly (throughput =
    useful pulls / window, efficiency = useful / total pulls, per-block
    delay = segment delay / s, storage overhead = rho - lambda/gamma,
    ...), so the result compares one-to-one with a simulator report.
    Delay fields are ``None`` when no segment completed in the window,
    exactly like the simulator's report.
    """
    if window <= 0:
        raise ValueError(f"measurement window must be > 0, got {window}")
    n = params.n_peers
    if not peers:
        raise ValueError("aggregate_report needs at least one peer summary")

    def peer_sum(key: str) -> int:
        return int(sum(summary[key] for summary in peers))

    def peer_mean(key: str) -> float:
        return float(sum(summary[key] for summary in peers)) / len(peers)

    pulls = int(collector["pulls"])
    useful = int(collector["useful_pulls"])
    delays = [float(d) for d in collector["delay_samples_list"]]
    throughput = useful / window
    demand = n * params.arrival_rate
    goodput = int(collector["delivered_original_blocks"]) / window
    occupancy = peer_mean("mean_occupancy")
    s = params.segment_size

    mean_segment_delay: Optional[float] = None
    mean_block_delay: Optional[float] = None
    p50_block_delay: Optional[float] = None
    p95_block_delay: Optional[float] = None
    if delays:
        mean_segment_delay = math.fsum(delays) / len(delays)
        mean_block_delay = mean_segment_delay / s
        p50_block_delay = percentile(delays, 50.0) / s
        p95_block_delay = percentile(delays, 95.0) / s

    report: Dict[str, Any] = {
        # configuration echo
        "n_peers": n,
        "arrival_rate": params.arrival_rate,
        "segment_size": s,
        "normalized_capacity": params.normalized_capacity,
        "window": window,
        # collector side
        "pulls": pulls,
        "useful_pulls": useful,
        "redundant_pulls": int(collector["redundant_pulls"]),
        "idle_pulls": int(collector["idle_pulls"])
        + int(collector["pull_empty_races"]),
        "segments_completed": int(collector["segments_completed"]),
        "throughput": throughput,
        "normalized_throughput": throughput / demand if demand else 0.0,
        "efficiency": useful / pulls if pulls else 0.0,
        "goodput": goodput,
        "normalized_goodput": goodput / demand if demand else 0.0,
        # peer side
        "mean_buffer_occupancy": occupancy,
        "empty_peer_fraction": peer_mean("empty_fraction"),
        "storage_overhead": max(
            occupancy - params.arrival_rate / params.deletion_rate, 0.0
        ),
        "injected_segments": peer_sum("injected_segments"),
        "injected_blocks": peer_sum("injected_blocks"),
        "blocked_injections": peer_sum("blocked_injections"),
        "gossip_transfers": peer_sum("gossip_transfers"),
        "gossip_no_target": peer_sum("gossip_no_target"),
        "gossip_undeliverable": peer_sum("gossip_undeliverable"),
        "blocks_expired": peer_sum("blocks_expired"),
        "blocks_lost_to_churn": peer_sum("blocks_lost_to_churn"),
        # delay
        "mean_segment_delay": mean_segment_delay,
        "mean_block_delay": mean_block_delay,
        "p50_block_delay": p50_block_delay,
        "p95_block_delay": p95_block_delay,
        "delay_samples": len(delays),
        # fault-channel degradation (gossip- and pull-side drops pool into
        # one counter, as in the simulator)
        "transfers_dropped": peer_sum("transfers_dropped")
        + int(collector["transfers_dropped"]),
        "blocks_rejected_polluted": int(
            collector["blocks_rejected_polluted"]
        ),
        "burst_departures": int(collector["burst_departures"]),
        "outage_time": float(collector["outage_time"]),
        # live-only extras
        "offers_sent": peer_sum("offers_sent"),
        "pull_blocks_served": peer_sum("pull_blocks_served"),
        "pull_empty_races": int(collector["pull_empty_races"]),
        "hash_verified": int(collector["hash_verified"]),
        "hash_failures": int(collector["hash_failures"]),
    }
    if extras:
        report.update(extras)
    return report
