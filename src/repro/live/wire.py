"""Live-runtime message catalog and object <-> frame serialization.

Frames (:mod:`repro.live.framing`) carry a JSON header plus opaque payload
bytes; this module defines what goes in them:

Control plane (peer <-> server registry connection, full duplex)
    ``hello`` -> ``welcome``  registration (the WELCOME carries the full
    session configuration, so standalone peers need no local flags),
    ``directory``, ``start``, ``mark``, ``stop``, ``reset``, ``bye``
    downstream; ``status`` and ``metrics-reply`` upstream; ``metrics``
    downstream requests one ``metrics-reply``.

Data plane (peer <-> peer, server -> peer)
    ``offer`` -> ``offer-reply`` -> ``block`` implements one gossip
    transfer (the OFFER round-trip realizes the simulator's
    rejection-sampled target eligibility check over the wire);
    ``pull`` -> ``pull-block`` | ``pull-empty`` implements one logging
    -server coupon pull.

Coded blocks travel with their GF(256) coefficient header and coded
payload as raw bytes (never through JSON) plus the segment descriptor and
the source segment's payload digest, so any collector can verify a decoded
segment end to end.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.coding.block import CodedBlock, SegmentDescriptor
from repro.core.params import Parameters
from repro.faults.plan import FaultPlan
from repro.live.framing import FrameGarbage

# -- control plane ----------------------------------------------------------
MSG_HELLO = "hello"
MSG_WELCOME = "welcome"
MSG_DIRECTORY = "directory"
MSG_START = "start"
MSG_MARK = "mark"
MSG_STOP = "stop"
MSG_RESET = "reset"
MSG_BYE = "bye"
MSG_STATUS = "status"
MSG_METRICS = "metrics"
MSG_METRICS_REPLY = "metrics-reply"
#: Peer -> server liveness beacon; carries the buffer's empty/non-empty
#: bit so a restarted server (or a stalled STATUS stream) resynchronizes
#: its candidate set from heartbeats alone.
MSG_HEARTBEAT = "heartbeat"
#: Server -> peer after a mid-window (re)registration: the collection
#: window is already open — resume the protocol without waiting for a
#: START broadcast that already happened.
MSG_RESUME = "resume"

# -- data plane -------------------------------------------------------------
MSG_OFFER = "offer"
MSG_OFFER_REPLY = "offer-reply"
MSG_BLOCK = "block"
MSG_PULL = "pull"
MSG_PULL_BLOCK = "pull-block"
MSG_PULL_EMPTY = "pull-empty"


def payload_digest(data: bytes) -> str:
    """Short content digest used for end-to-end decode verification."""
    return hashlib.sha256(data).hexdigest()[:16]


def block_to_wire(
    msg_type: str, block: CodedBlock, digest: str, **extra: Any
) -> Tuple[Dict[str, Any], bytes]:
    """Serialize one RLNC coded block to a (header, payload) frame pair.

    The payload is the s-byte coefficient vector followed by the coded
    payload row; the header carries the segment descriptor, timestamps, and
    the segment's original-payload *digest* (so collectors can verify their
    reconstruction against the source without ever seeing it).
    """
    if block.coefficients is None or block.payload is None:
        raise ValueError(
            "live transport requires RLNC blocks with explicit "
            "coefficients and payload (mode='rlnc', payload_bytes > 0)"
        )
    segment = block.segment
    header: Dict[str, Any] = {
        "type": msg_type,
        "segment": {
            "segment_id": segment.segment_id,
            "source_peer": segment.source_peer,
            "size": segment.size,
            "injected_at": segment.injected_at,
            "generation": segment.generation,
        },
        "created_at": block.created_at,
        "polluted": bool(block.polluted),
        "digest": digest,
        **extra,
    }
    payload = block.coefficients.tobytes() + block.payload.tobytes()
    return header, payload


def block_from_wire(header: Mapping[str, Any], payload: bytes) -> CodedBlock:
    """Reconstruct a :class:`CodedBlock` from a received frame.

    Malformed segment metadata or a payload shorter than the declared
    coefficient vector raises :class:`FrameGarbage` (a protocol error the
    reader surfaces cleanly, never an index crash deeper in the stack).
    """
    try:
        raw = header["segment"]
        segment = SegmentDescriptor(
            segment_id=int(raw["segment_id"]),
            source_peer=int(raw["source_peer"]),
            size=int(raw["size"]),
            injected_at=float(raw["injected_at"]),
            generation=int(raw["generation"]),
        )
        created_at = float(header["created_at"])
        polluted = bool(header["polluted"])
    except (KeyError, TypeError, ValueError) as exc:
        raise FrameGarbage(f"malformed block header: {exc}") from exc
    if len(payload) <= segment.size:
        raise FrameGarbage(
            f"block payload is {len(payload)} byte(s), need more than the "
            f"{segment.size}-byte coefficient vector"
        )
    coefficients = np.frombuffer(payload[: segment.size], dtype=np.uint8).copy()
    data = np.frombuffer(payload[segment.size :], dtype=np.uint8).copy()
    return CodedBlock(
        segment=segment,
        coefficients=coefficients,
        payload=data,
        created_at=created_at,
        polluted=polluted,
    )


def block_digest_of(header: Mapping[str, Any]) -> str:
    """The segment payload digest carried in a block frame header."""
    value = header.get("digest", "")
    return value if isinstance(value, str) else ""


def params_to_wire(params: Parameters) -> Dict[str, Any]:
    """Serialize :class:`Parameters` for the WELCOME frame.

    The live runtime reuses ``Parameters`` and ``FaultPlan`` verbatim; the
    Byzantine adversary plans and server-side defense knobs are
    simulation-only and rejected here rather than silently dropped.
    """
    if params.adversary is not None:
        raise ValueError(
            "the live runtime does not run adversary plans; strip the "
            "AdversaryPlan before serving"
        )
    payload = dataclasses.asdict(params)
    return payload


def params_from_wire(payload: Mapping[str, Any]) -> Parameters:
    """Reconstruct :class:`Parameters` from a WELCOME frame header."""
    data = dict(payload)
    faults = data.get("faults")
    if faults is not None:
        faults = dict(faults)
        windows = faults.get("outage_windows") or ()
        faults["outage_windows"] = tuple(
            (float(start), float(end)) for start, end in windows
        )
        process_faults = faults.get("process_faults") or ()
        faults["process_faults"] = tuple(
            (str(kind), float(at), float(duration), float(fraction))
            for kind, at, duration, fraction in process_faults
        )
        data["faults"] = FaultPlan(**faults)
    data.pop("adversary", None)
    return Parameters(**data)
