"""The live logging-server process: registry, collector, and pull engine.

One :class:`LiveLoggingServer` plays two roles at once:

- **registry / control plane** — peers connect, HELLO, and get back a
  WELCOME carrying the full session configuration (so standalone peer
  processes need nothing but the server address and their slot); the
  server broadcasts the peer DIRECTORY, the synchronized START epoch,
  MARK/STOP window edges, and RESET frames for disconnect bursts;

- **the paper's N_s collaborating logging servers** — ``n_servers``
  concurrent pull loops share one decoder pool (pooled state is exactly
  the paper's "collaborating servers" assumption), each drawing
  candidates at rate ``c·N/N_s`` from the set of peers whose buffers are
  currently non-empty, as advertised by STATUS frames.

The pull path mirrors :meth:`repro.core.server.ServerPool.pull` decision
for decision: idle when no candidate, redundant when the drawn segment is
already decoded, in-flight loss checked once per trial before the
pollution re-pull loop, polluted blocks detected by GF(2^8) rank (an
all-zero coefficient header) and re-drawn within the trial's budget.
Completed segments are actually decoded and their payload digest checked
against the source digest — end-to-end verification the simulator cannot
perform because it never moves real bytes.
"""

from __future__ import annotations

import asyncio
import random
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.coding.block import CodedBlock
from repro.coding.rlnc import SegmentDecoder
from repro.core.params import Parameters
from repro.faults.plan import FaultPlan
from repro.live import ports, wire
from repro.live.checkpoint import (
    CheckpointError,
    ServerCheckpoint,
    load_checkpoint,
    write_checkpoint,
)
from repro.live.clock import LiveClock, PoissonSchedule
from repro.live.framing import Frame, FrameError, FrameTruncated
from repro.live.livemetrics import CollectorStats
from repro.live.transport import (
    BURST_STREAM,
    ConnectionCache,
    FramedConnection,
    NetemShim,
    POLLUTER_STREAM,
    detects_pollution,
)
from repro.sim.metrics import WindowedAverage
from repro.sim.rng import SeedSequenceRegistry, exponential
from repro.util.randomset import RandomizedSet

#: Outbound pull connections cached across all pull loops.
PULL_CACHE = 64

#: Wall-clock timeout for one peer's metrics reply during collection.
METRICS_TIMEOUT = 30.0

#: Wall seconds between decode-state checkpoint writes (when enabled).
DEFAULT_CHECKPOINT_INTERVAL = 1.0

#: A peer whose last heartbeat is older than this many wall seconds is
#: dropped from the pull candidate set (it may be SIGSTOPped); the next
#: heartbeat or status frame reinstates it.
HEARTBEAT_TIMEOUT_WALL = 8.0


class _PeerRecord:
    """Registry entry for one connected peer."""

    __slots__ = ("slot", "host", "port", "conn", "last_seen")

    def __init__(
        self, slot: int, host: str, port: int, conn: FramedConnection,
        last_seen: float = 0.0,
    ) -> None:
        self.slot = slot
        self.host = host
        self.port = port
        self.conn = conn
        self.last_seen = last_seen


class LiveLoggingServer:
    """Registry + collector + the N_s pull loops of one live swarm."""

    def __init__(
        self,
        params: Parameters,
        seed: int,
        time_scale: float = 1.0,
        clock: Optional[LiveClock] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint_path: Optional[Path] = None,
        checkpoint_interval: float = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> None:
        if params.has_adversary:
            raise ValueError("the live runtime does not run adversary plans")
        if checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be > 0, got {checkpoint_interval}"
            )
        self.params = params
        self.seed = seed
        self.host = host
        self._requested_port = port
        self.port = 0
        self.clock = clock if clock is not None else LiveClock(time_scale)
        self.checkpoint_path = (
            None if checkpoint_path is None else Path(checkpoint_path)
        )
        self.checkpoint_interval = checkpoint_interval
        self._seeds = SeedSequenceRegistry(seed)
        seeds = self._seeds
        self._select_rng = seeds.python("live:server:select")
        self._event_rngs = [
            seeds.python(f"live:server{i}:events")
            for i in range(params.n_servers)
        ]
        self._outage_rng = seeds.python("live:server:outages")
        self._burst_rng = seeds.python(BURST_STREAM)
        self.netem = NetemShim(
            params.faults,
            params.n_peers,
            seeds.python(POLLUTER_STREAM),
            seeds.python("live:server:netem"),
        )
        self.stats = CollectorStats()
        self.peers: Dict[int, _PeerRecord] = {}
        self.nonempty: RandomizedSet[int] = RandomizedSet()
        self._decoders: Dict[int, SegmentDecoder] = {}
        self._digests: Dict[int, str] = {}
        self._completed: Set[int] = set()
        self._cache = ConnectionCache(self._open_pull, PULL_CACHE)
        self._listener: Optional[asyncio.AbstractServer] = None
        self._tasks: List["asyncio.Task[None]"] = []
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self._metrics_futures: Dict[
            Tuple[int, int], "asyncio.Future[Dict[str, float]]"
        ] = {}
        self._metrics_req = 0
        self._next_slot = 0
        self._peer_joined = asyncio.Event()
        self._paused = False
        self._resumed = asyncio.Event()
        self._resumed.set()
        self._pull_schedules: List[PoissonSchedule] = []
        self.draining = asyncio.Event()
        #: restarts survived so far (0 on a fresh start).
        self.restarts = 0
        #: rank carried over from the checkpoint at the last restore.
        self.restored_rank = 0
        #: checkpoint journal writes performed by this process.
        self.checkpoint_writes = 0
        self._marked_at: Optional[float] = None
        self._began = False

    @property
    def marked_at(self) -> Optional[float]:
        """Sim time MARK happened (restored across restarts), or None."""
        return self._marked_at

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the registry listener; restore decode state if journaled.

        When ``checkpoint_path`` names an existing journal, this process is
        a supervised respawn of a killed collector: the decoder pool, the
        measurement window, and the clock epoch are restored before the
        listener accepts a single reconnecting peer.
        """
        if (
            self.checkpoint_path is not None
            and self.checkpoint_path.exists()
        ):
            self._restore(load_checkpoint(self.checkpoint_path))
        self._listener, self.port = await ports.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    def _restore(self, state: ServerCheckpoint) -> None:
        """Adopt a checkpoint: decoders, stats, window edge, clock epoch."""
        if state.seed != self.seed:
            raise CheckpointError(
                f"checkpoint was written for seed {state.seed}, this "
                f"server runs seed {self.seed}"
            )
        if state.time_scale != self.clock.time_scale:
            raise CheckpointError(
                f"checkpoint time_scale {state.time_scale} != configured "
                f"{self.clock.time_scale}"
            )
        self.restarts = state.restarts + 1
        restored: Dict[int, SegmentDecoder] = {}
        rank = 0
        for snap in state.decoders:
            decoder = SegmentDecoder.from_snapshot(snap)
            restored[snap.segment.segment_id] = decoder
            rank += decoder.rank
        if rank != state.total_rank:
            raise CheckpointError(
                f"restored rank {rank} != checkpointed {state.total_rank}"
            )
        self._decoders = restored
        self.restored_rank = rank
        self._digests = dict(state.digests)
        self._completed = set(state.completed)
        self._next_slot = max(self._next_slot, state.next_slot)
        self._marked_at = state.marked_at
        for name in CollectorStats._counter_names():
            setattr(self.stats, name, int(state.counters.get(name, 0)))
        self.stats.delay_samples = list(state.delay_samples)
        down = self.stats.servers_down
        down.value = state.servers_down["value"]
        down._last_time = state.servers_down["last_time"]
        down._integral = state.servers_down["integral"]
        down._window_start = state.servers_down["window_start"]
        if state.epoch is not None and not self.clock.started:
            # loop.time() is CLOCK_MONOTONIC (system-wide on Linux), so the
            # dead process's epoch maps this process onto the *same*
            # simulated timeline: no accumulated delay is forgiven.
            self.clock.start(state.epoch)
        # Account the kill-to-restore gap as server downtime so outage_time
        # reflects the real blackout the peers experienced.
        now = max(self.clock.now(), state.written_at)
        down.update(state.written_at, 1.0)
        down.update(now, 0.0)
        # Re-salt restart-scoped streams: the dead process consumed an
        # unknown prefix of each, so replaying from the top would reuse
        # draws. The polluter roster stream is deliberately NOT re-salted —
        # polluter identities must survive restarts.
        salt = f":r{self.restarts}"
        self._select_rng = self._seeds.python("live:server:select" + salt)
        self._event_rngs = [
            self._seeds.python(f"live:server{i}:events" + salt)
            for i in range(self.params.n_servers)
        ]
        self._outage_rng = self._seeds.python("live:server:outages" + salt)
        self._burst_rng = self._seeds.python(BURST_STREAM + salt)

    async def wait_for_peers(
        self, count: int, timeout: Optional[float] = None
    ) -> None:
        """Block until *count* peers have registered."""

        async def _wait() -> None:
            while len(self.peers) < count:
                self._peer_joined.clear()
                await self._peer_joined.wait()

        if timeout is None:
            await _wait()
        else:
            await asyncio.wait_for(_wait(), timeout)

    async def begin(self, start_delay_wall: float = 0.5) -> None:
        """Broadcast the directory and START, then spawn the pull engine."""
        await self.broadcast(
            {"type": wire.MSG_DIRECTORY, "peers": self._directory()}
        )
        if not self.clock.started:
            loop = asyncio.get_running_loop()
            self.clock.start(loop.time() + start_delay_wall)
        await self.broadcast(
            {"type": wire.MSG_START, "in": start_delay_wall}
        )
        self._began = True
        self._spawn_engine()

    async def resume(self) -> None:
        """Spawn the pull engine on a restored clock (supervised respawn).

        No START broadcast: the swarm's epoch was fixed by the dead
        predecessor and restored from the checkpoint; peers re-register on
        their own schedule and get a RESUME frame as they arrive.
        """
        if not self.clock.started:
            raise RuntimeError(
                "resume() needs a restored clock epoch; call begin() for "
                "a fresh swarm"
            )
        self._began = True
        self._spawn_engine()

    def _directory(self) -> Dict[int, List[Any]]:
        return {
            record.slot: [record.host, record.port]
            for record in self.peers.values()
        }

    def _spawn_engine(self) -> None:
        """Start the pull loops, fault controllers, and checkpoint loop."""
        spawn = asyncio.create_task
        self._pull_schedules = [
            PoissonSchedule(
                self.clock, self._event_rngs[i], self.params.per_server_rate
            )
            for i in range(self.params.n_servers)
        ]
        self._tasks = [
            spawn(self._pull_loop(i), name=f"server:pull{i}")
            for i in range(self.params.n_servers)
        ]
        plan = self.netem.plan
        # process_faults are NOT scheduled here: in the live runtime they
        # are delivered as real signals by the supervisor; only the
        # blackhole-style outage channels run in-process.
        if plan.outage_windows or plan.outage_rate > 0.0:
            self._tasks.append(
                spawn(self._outage_controller(), name="server:outages")
            )
        if plan.burst_rate > 0.0:
            self._tasks.append(
                spawn(self._burst_controller(), name="server:bursts")
            )
        if self.checkpoint_path is not None:
            self._tasks.append(
                spawn(self._checkpoint_loop(), name="server:checkpoint")
            )
        self._tasks.append(
            spawn(self._heartbeat_reaper(), name="server:reaper")
        )

    async def broadcast(self, header: Dict[str, Any]) -> None:
        """Send one control frame to every registered peer."""
        for record in list(self.peers.values()):
            try:
                await record.conn.send(header)
            except (ConnectionError, OSError):
                pass

    async def mark(self) -> None:
        """Start the measurement window on both sides of the swarm."""
        self._marked_at = self.clock.now()
        self.stats.begin_window(self._marked_at)
        await self.broadcast({"type": wire.MSG_MARK})
        # Journal the window edge immediately: a server killed right after
        # MARK must not restart believing it is still warming up.
        self.write_checkpoint_now()

    async def stop_protocol(self) -> None:
        """Stop the pull engine and tell peers to stop their loops."""
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        await self.broadcast({"type": wire.MSG_STOP})

    # -- checkpointing -------------------------------------------------------

    def _snapshot(self) -> ServerCheckpoint:
        """Capture the full decode/collection state for the journal."""
        decoders = tuple(
            self._decoders[sid].snapshot() for sid in sorted(self._decoders)
        )
        down = self.stats.servers_down
        return ServerCheckpoint(
            seed=self.seed,
            restarts=self.restarts,
            time_scale=self.clock.time_scale,
            epoch=self.clock.epoch,
            marked_at=self._marked_at,
            next_slot=self._next_slot,
            written_at=self.clock.now(),
            completed=tuple(sorted(self._completed)),
            digests=dict(self._digests),
            counters={
                name: int(getattr(self.stats, name))
                for name in CollectorStats._counter_names()
            },
            delay_samples=tuple(self.stats.delay_samples),
            servers_down={
                "value": down.value,
                "last_time": down._last_time,
                "integral": down._integral,
                "window_start": down._window_start,
            },
            total_rank=sum(d.rank for d in self._decoders.values()),
            decoders=decoders,
        )

    def write_checkpoint_now(self) -> None:
        """Write one journal generation (no-op without a checkpoint path)."""
        if self.checkpoint_path is None:
            return
        write_checkpoint(self.checkpoint_path, self._snapshot())
        self.checkpoint_writes += 1

    async def _checkpoint_loop(self) -> None:
        """Journal the decode state every ``checkpoint_interval`` wall secs."""
        while True:
            await asyncio.sleep(self.checkpoint_interval)
            self.write_checkpoint_now()

    async def _heartbeat_reaper(self) -> None:
        """Evict silent peers from the pull candidate set.

        A SIGKILLed or SIGSTOPped peer process cannot send STATUS(empty),
        so without heartbeats the candidate set would keep feeding dead
        addresses to the pull loops forever. The record itself stays (its
        connection teardown deregisters it); only candidacy is revoked, and
        the next heartbeat or status frame restores it.
        """
        interval = HEARTBEAT_TIMEOUT_WALL / 4.0
        while True:
            await asyncio.sleep(interval)
            deadline = asyncio.get_running_loop().time()
            deadline -= HEARTBEAT_TIMEOUT_WALL
            for record in list(self.peers.values()):
                if 0.0 < record.last_seen < deadline:
                    self.nonempty.discard(record.slot)

    async def close(self) -> None:
        """Full teardown: pull engine, peer connections, listener.

        BYE goes out *before* the handler tasks are cancelled: a bare EOF
        now means "the server crashed" to a reconnect-capable peer, so a
        deliberate shutdown must say goodbye explicitly or every peer
        would sit out its full reconnect deadline.
        """
        self.draining.set()
        await self.broadcast({"type": wire.MSG_BYE})
        for task in [*self._tasks, *self._conn_tasks]:
            task.cancel()
        await asyncio.gather(
            *self._tasks, *self._conn_tasks, return_exceptions=True
        )
        self._tasks = []
        self._conn_tasks.clear()
        await self._cache.close_all()
        for record in list(self.peers.values()):
            try:
                await record.conn.send({"type": wire.MSG_BYE})
            except (ConnectionError, OSError):
                pass
            await record.conn.close()
        self.peers.clear()
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()

    # -- control plane ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        conn = FramedConnection(reader, writer)
        record: Optional[_PeerRecord] = None
        try:
            hello = await conn.read()
            if hello is None or hello.type != wire.MSG_HELLO:
                return
            record = self._register(hello, conn)
            await conn.send({
                "type": wire.MSG_WELCOME,
                "slot": record.slot,
                "seed": self.seed,
                "time_scale": self.clock.time_scale,
                "epoch": self.clock.epoch,
                "params": wire.params_to_wire(self.params),
            })
            if self._began:
                await self._welcome_back(record)
            self._peer_joined.set()
            while True:
                frame = await conn.read()
                if frame is None or frame.type == wire.MSG_BYE:
                    break
                self._handle_peer_frame(record, frame)
        except FrameTruncated:
            # The peer vanished mid-frame (killed, or the network tore the
            # stream). Reconnect-and-resume handles it; nothing to log.
            pass
        except (FrameError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # Teardown cancels handler tasks; swallow so the streams
            # machinery sees a clean exit, not an unhandled cancellation.
            pass
        finally:
            if record is not None and self.peers.get(record.slot) is record:
                del self.peers[record.slot]
                self.nonempty.discard(record.slot)
            try:
                await conn.close()
            except asyncio.CancelledError:
                pass
            # Deregister only after the transport is down: close() gathers
            # this set, so a task must stay visible until fully drained.
            self._conn_tasks.discard(task)

    def _register(self, hello: Frame, conn: FramedConnection) -> _PeerRecord:
        slot = hello.header.get("slot")
        if slot is None:
            slot = self._next_slot
        slot = int(slot)
        self._next_slot = max(self._next_slot, slot + 1)
        if not 0 <= slot < self.params.n_peers:
            raise FrameError(f"slot {slot} out of range")
        record = _PeerRecord(
            slot, str(hello.header["host"]), int(hello.header["port"]), conn
        )
        self.peers[slot] = record
        resume = hello.header.get("resume")
        if isinstance(resume, dict):
            # A reconnecting peer replays its buffer state so the pull
            # candidate set is correct before its first STATUS edge.
            if resume.get("nonempty", False):
                self.nonempty.add(slot)
            else:
                self.nonempty.discard(slot)
        return record

    async def _welcome_back(self, record: _PeerRecord) -> None:
        """Re-integrate a peer that (re)joined a running swarm.

        The newcomer gets the full directory plus a RESUME frame (carrying
        whether the measurement window is already open); everyone else gets
        a partial directory update so gossip re-targets the peer's new
        listen address instead of its dead one.
        """
        await record.conn.send(
            {"type": wire.MSG_DIRECTORY, "peers": self._directory()}
        )
        await record.conn.send({
            "type": wire.MSG_RESUME,
            "marked": self._marked_at is not None,
        })
        update = {
            "type": wire.MSG_DIRECTORY,
            "partial": True,
            "peers": {record.slot: [record.host, record.port]},
        }
        for other in list(self.peers.values()):
            if other is record:
                continue
            try:
                await other.conn.send(update)
            except (ConnectionError, OSError):
                pass
        # The address may have changed; drop any cached pull connection.
        await self._cache.drop(record.slot)

    def _handle_peer_frame(self, record: _PeerRecord, frame: Frame) -> None:
        kind = frame.type
        if kind == wire.MSG_STATUS:
            if frame.header.get("nonempty", False):
                self.nonempty.add(record.slot)
            else:
                self.nonempty.discard(record.slot)
        elif kind == wire.MSG_HEARTBEAT:
            record.last_seen = asyncio.get_running_loop().time()
            if frame.header.get("nonempty", False):
                self.nonempty.add(record.slot)
            else:
                self.nonempty.discard(record.slot)
        elif kind == wire.MSG_METRICS_REPLY:
            key = (record.slot, int(frame.header.get("req", -1)))
            future = self._metrics_futures.pop(key, None)
            if future is not None and not future.done():
                future.set_result(dict(frame.header["stats"]))

    async def request_metrics(self, slot: int) -> Dict[str, float]:
        """Ask one peer for its measurement-window stats."""
        record = self.peers[slot]
        self._metrics_req += 1
        req = self._metrics_req
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, float]]" = loop.create_future()
        self._metrics_futures[(slot, req)] = future
        await record.conn.send({"type": wire.MSG_METRICS, "req": req})
        try:
            return await asyncio.wait_for(future, METRICS_TIMEOUT)
        finally:
            self._metrics_futures.pop((slot, req), None)

    # -- pull engine --------------------------------------------------------

    async def _open_pull(self, slot: int) -> FramedConnection:
        record = self.peers.get(slot)
        if record is None:
            raise ConnectionError(f"no registered peer in slot {slot}")
        return await FramedConnection.open(record.host, record.port, attempts=2)

    async def _pull_loop(self, index: int) -> None:
        schedule = self._pull_schedules[index]
        while True:
            await schedule.wait()
            if self._paused:
                await self._resumed.wait()
                continue
            # Timestamp with the realized clock reading (see the peer's
            # injection loop): delays compare actual times on both ends.
            await self._pull_once(self.clock.now())

    async def _fetch_candidate(
        self,
    ) -> Optional[Tuple[int, CodedBlock, str]]:
        """Draw one non-empty peer and pull a coded block from it.

        Returns ``None`` when there is no candidate (idle pull) — either no
        peer advertises a non-empty buffer, or the drawn peer emptied /
        died between advertisement and service (a race the simulator's
        atomic transfers cannot exhibit; counted as idle).
        """
        if not self.nonempty:
            return None
        slot = self.nonempty.sample(self._select_rng)
        try:
            conn = await self._cache.get(slot)
            reply = await conn.request({"type": wire.MSG_PULL})
        except (ConnectionError, FrameError, OSError):
            await self._cache.drop(slot)
            self.stats.pull_empty_races += 1
            return None
        if reply.type == wire.MSG_PULL_EMPTY:
            self.nonempty.discard(slot)
            self.stats.pull_empty_races += 1
            return None
        if reply.type != wire.MSG_PULL_BLOCK:
            await self._cache.drop(slot)
            self.stats.pull_empty_races += 1
            return None
        block = wire.block_from_wire(reply.header, reply.payload)
        return slot, block, wire.block_digest_of(reply.header)

    async def _pull_once(self, now: float) -> None:
        """One pull trial; mirrors ``ServerPool.pull`` decision-for-decision."""
        stats = self.stats
        stats.pulls += 1
        candidate = await self._fetch_candidate()
        if candidate is None:
            stats.idle_pulls += 1
            return
        _, block, digest = candidate
        if block.segment.segment_id in self._completed:
            stats.redundant_pulls += 1
            return
        if self.netem.drop_pull():
            # In-flight loss: checked once per trial, before any re-pulls,
            # exactly like the simulator.
            stats.transfers_dropped += 1
            return
        attempts = (
            1 + self.netem.plan.pollution_repull_budget
            if self.netem.polluters
            else 1
        )
        for _ in range(attempts):
            if detects_pollution(block):
                stats.blocks_rejected_polluted += 1
                candidate = await self._fetch_candidate()
                if candidate is None:
                    stats.idle_pulls += 1
                    return
                _, block, digest = candidate
                if block.segment.segment_id in self._completed:
                    stats.redundant_pulls += 1
                    return
                continue
            self._ingest(block, digest, now)
            return
        # Budget exhausted on junk: the trial ends unproductive.
        stats.redundant_pulls += 1

    def _ingest(self, block: CodedBlock, digest: str, now: float) -> None:
        """Feed one clean block to the pooled decoder state."""
        segment_id = block.segment.segment_id
        decoder = self._decoders.get(segment_id)
        if decoder is None:
            decoder = SegmentDecoder(block.segment)
            self._decoders[segment_id] = decoder
        if digest:
            self._digests.setdefault(segment_id, digest)
        innovative = decoder.offer(block, now)
        if not innovative:
            self.stats.redundant_pulls += 1
            return
        self.stats.useful_pulls += 1
        if decoder.is_complete:
            self._completed.add(segment_id)
            self.stats.on_segment_completed(
                now, block.segment.injected_at, block.segment.size
            )
            self._verify(segment_id, decoder)
            # Decoded segments' state is no longer needed; keep memory flat.
            del self._decoders[segment_id]

    def _verify(self, segment_id: int, decoder: SegmentDecoder) -> None:
        """End-to-end check: decoded payload vs the source digest."""
        expected = self._digests.pop(segment_id, "")
        if not expected:
            return
        rows = decoder.decode()
        if wire.payload_digest(rows.tobytes()) == expected:
            self.stats.hash_verified += 1
        else:
            self.stats.hash_failures += 1

    # -- fault controllers ---------------------------------------------------

    async def _outage_controller(self) -> None:
        """Drive server outages: scheduled windows or the renewal process."""
        plan = self.netem.plan
        if plan.outage_windows:
            for start, end in plan.outage_windows:
                if end <= self.clock.now():
                    # Window fully elapsed before this (restarted) process
                    # came up; the blackout already happened for real.
                    continue
                await self.clock.sleep_until(start)
                await self._enter_outage(end - start)
            return
        while True:
            gap = exponential(self._outage_rng, plan.outage_rate)
            await self.clock.sleep_sim(gap)
            await self._enter_outage(plan.outage_duration)

    async def _enter_outage(self, duration: float) -> None:
        """All servers blackhole for *duration* sim units, then catch up."""
        if duration <= 0:
            return
        self._paused = True
        self._resumed.clear()
        self.stats.servers_down.update(self.clock.now(), 1.0)
        await self.clock.sleep_sim(duration)
        now = self.clock.now()
        self.stats.servers_down.update(now, 0.0)
        catchup = min(
            int(duration * self.params.per_server_rate),
            self.netem.plan.catchup_limit,
        )
        # Push every pull clock past the outage so the backlog does not
        # drain as an unbounded burst; the bounded catch-up below is the
        # only compensation, exactly like the simulator.
        for schedule in self._pull_schedules:
            schedule.defer(duration)
        self._paused = False
        self._resumed.set()
        # Burn down the backlog: the same bounded catch-up burst the
        # simulator schedules at resume time.
        for _ in range(self.params.n_servers):
            for _ in range(catchup):
                await self._pull_once(self.clock.now())

    async def _burst_controller(self) -> None:
        """Correlated departures: RESET a random cohort of peers."""
        plan = self.netem.plan
        while True:
            gap = exponential(self._burst_rng, plan.burst_rate)
            await self.clock.sleep_sim(gap)
            slots = self.netem.sample_burst_slots(self._burst_rng)
            self.stats.burst_departures += len(slots)
            for slot in slots:
                self.nonempty.discard(slot)
                await self._cache.drop(slot)
                record = self.peers.get(slot)
                if record is not None:
                    try:
                        await record.conn.send({"type": wire.MSG_RESET})
                    except (ConnectionError, OSError):
                        pass
