"""Sim-vs-live cross-validation: compare two MetricsReport-shaped dicts.

The live runtime's whole claim is that it executes *the same protocol* the
event engine simulates; this module turns that claim into a checkable
artifact.  :func:`compare_reports` takes one simulator report and one live
report for identical :class:`Parameters` and computes, per validated
metric, the relative deviation against a stated tolerance.  The E-LIVE
experiment emits the resulting :class:`CrossValReport` to
``results/live.json`` and CI asserts ``agrees``.

Tolerances are loose by design: a live swarm and a simulation with the
same seed are *statistically* identical, not trajectory-identical (socket
scheduling reorders events), so the bands must cover two independent
finite-window estimates of the same steady state.  Delay quantiles get a
wider band than rate metrics because their estimator variance is larger at
equal window length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Relative tolerance per cross-validated metric (fraction of the
#: simulator's value; see module docstring for why the bands differ).
DEFAULT_TOLERANCES: Dict[str, float] = {
    "normalized_throughput": 0.15,
    "efficiency": 0.15,
    "mean_buffer_occupancy": 0.25,
    "mean_block_delay": 0.40,
    "p95_block_delay": 0.50,
}

#: Deviations are measured against at least this denominator, so metrics
#: near zero (e.g. an efficiency-starved operating point) do not explode
#: the relative error.
ABSOLUTE_FLOOR = 1e-3


@dataclass(frozen=True)
class MetricComparison:
    """One metric's sim-vs-live deviation verdict."""

    metric: str
    sim_value: Optional[float]
    live_value: Optional[float]
    deviation: Optional[float]
    tolerance: float
    within: bool

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready flat dict."""
        return {
            "metric": self.metric,
            "sim": self.sim_value,
            "live": self.live_value,
            "deviation": self.deviation,
            "tolerance": self.tolerance,
            "within": self.within,
        }


@dataclass(frozen=True)
class CrossValReport:
    """All metric comparisons of one operating point."""

    comparisons: Tuple[MetricComparison, ...] = field(default=())

    @property
    def agrees(self) -> bool:
        """True when every compared metric is inside its tolerance band."""
        return all(c.within for c in self.comparisons)

    @property
    def worst(self) -> Optional[MetricComparison]:
        """The comparison with the largest relative deviation."""
        candidates = [c for c in self.comparisons if c.deviation is not None]
        if not candidates:
            return None
        return max(candidates, key=lambda c: c.deviation / c.tolerance)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready nested dict."""
        return {
            "agrees": self.agrees,
            "comparisons": [c.to_payload() for c in self.comparisons],
        }


def relative_deviation(sim: float, live: float) -> float:
    """|live - sim| over max(|sim|, floor)."""
    return abs(live - sim) / max(abs(sim), ABSOLUTE_FLOOR)


def compare_metric(
    metric: str,
    sim_value: Optional[float],
    live_value: Optional[float],
    tolerance: float,
) -> MetricComparison:
    """Compare one metric pair; ``None`` on both sides agrees trivially."""
    if sim_value is None and live_value is None:
        return MetricComparison(metric, None, None, None, tolerance, True)
    if sim_value is None or live_value is None:
        # One side produced the statistic and the other did not: that is a
        # disagreement (e.g. sim completed segments but live never did).
        return MetricComparison(
            metric, sim_value, live_value, None, tolerance, False
        )
    deviation = relative_deviation(float(sim_value), float(live_value))
    return MetricComparison(
        metric,
        float(sim_value),
        float(live_value),
        deviation,
        tolerance,
        deviation <= tolerance,
    )


def compare_reports(
    sim_report: Mapping[str, Any],
    live_report: Mapping[str, Any],
    tolerances: Optional[Mapping[str, float]] = None,
) -> CrossValReport:
    """Cross-validate a live report against its simulator twin."""
    bands = dict(DEFAULT_TOLERANCES if tolerances is None else tolerances)
    comparisons: List[MetricComparison] = []
    for metric, tolerance in bands.items():
        if tolerance <= 0:
            raise ValueError(
                f"tolerance for {metric!r} must be > 0, got {tolerance}"
            )
        comparisons.append(
            compare_metric(
                metric,
                _as_optional_float(sim_report.get(metric)),
                _as_optional_float(live_report.get(metric)),
                tolerance,
            )
        )
    return CrossValReport(tuple(comparisons))


def _as_optional_float(value: Any) -> Optional[float]:
    if value is None:
        return None
    return float(value)
