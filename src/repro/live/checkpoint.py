"""Atomic on-disk checkpointing of the live collector's decode state.

A SIGKILLed :class:`repro.live.server.LiveLoggingServer` loses everything
in memory — most painfully the accumulated GF(256) rank of every
in-flight segment, which took real network round-trips to collect.  This
module persists that state so a supervised restart resumes the *same*
collection window: the clock epoch, the measurement-window edge, every
in-flight :class:`~repro.coding.rlnc.SegmentDecoder` (reduced coefficient
rows, payload rows, pivot columns), the verified-segment digest map, and
the collector counters.

File format (``repro-live-ckpt-v1``)
    A sequence of frames in the live wire framing
    (:mod:`repro.live.framing`): one ``checkpoint`` header frame carrying
    every scalar field, then one ``decoder`` frame per in-flight segment
    whose binary payload is the reduced coefficient rows followed by the
    payload rows.  Reusing the framing gives the file the same eager
    validation properties as the wire: a torn or corrupt file raises
    :class:`CheckpointError` on load instead of resurrecting garbage
    decode state.

Write discipline
    ``write_checkpoint`` writes to a temp file in the target directory,
    fsyncs, and ``os.replace``s into place — a crash mid-write leaves the
    previous checkpoint intact, never a torn one (the load path still
    classifies a truncated tail defensively).
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.coding.block import SegmentDescriptor
from repro.coding.linalg import DecoderSnapshot
from repro.coding.rlnc import SegmentDecoderSnapshot
from repro.live.framing import Frame, FrameDecoder, FrameError, encode_frame

#: Format tag of the journal; bump on any incompatible layout change so a
#: restarted server refuses a checkpoint written by an older binary
#: instead of misreading it.
CHECKPOINT_FORMAT = "repro-live-ckpt-v1"

_HEADER_TYPE = "checkpoint"
_DECODER_TYPE = "decoder"


class CheckpointError(Exception):
    """The checkpoint file is unreadable, torn, or from another format."""


@dataclass(frozen=True)
class ServerCheckpoint:
    """Everything a restarted collector needs to resume its window."""

    #: root seed of the swarm (restore refuses a seed mismatch).
    seed: int
    #: restarts already survived when this checkpoint was written.
    restarts: int
    #: sim-units-per-wall-second of the running clock.
    time_scale: float
    #: the clock epoch (``loop.time()`` units; CLOCK_MONOTONIC is
    #: system-wide on Linux, so it survives a process restart on one box).
    epoch: Optional[float]
    #: sim time the measurement window opened, or None before MARK.
    marked_at: Optional[float]
    #: next slot the registry would assign to an unnumbered HELLO.
    next_slot: int
    #: sim time this checkpoint was written (downtime accounting anchor).
    written_at: float
    #: segment ids already fully decoded and verified.
    completed: Tuple[int, ...]
    #: segment id -> source payload digest (verification state).
    digests: Dict[int, str]
    #: collector counters (CollectorStats counter names).
    counters: Dict[str, int]
    #: per-completion delay samples of the open window.
    delay_samples: Tuple[float, ...]
    #: serialized WindowedAverage internals of the downtime integral.
    servers_down: Dict[str, float]
    #: sum of in-flight decoder ranks at write time (restore cross-check:
    #: "zero rank lost" is asserted against this, not assumed).
    total_rank: int
    #: every in-flight segment decoder.
    decoders: Tuple[SegmentDecoderSnapshot, ...]


def _segment_to_json(segment: SegmentDescriptor) -> Dict[str, Any]:
    return {
        "segment_id": segment.segment_id,
        "source_peer": segment.source_peer,
        "size": segment.size,
        "injected_at": segment.injected_at,
        "generation": segment.generation,
    }


def _segment_from_json(raw: Mapping[str, Any]) -> SegmentDescriptor:
    return SegmentDescriptor(
        segment_id=int(raw["segment_id"]),
        source_peer=int(raw["source_peer"]),
        size=int(raw["size"]),
        injected_at=float(raw["injected_at"]),
        generation=int(raw["generation"]),
    )


def _decoder_frame(snap: SegmentDecoderSnapshot) -> bytes:
    decoder = snap.decoder
    header: Dict[str, Any] = {
        "type": _DECODER_TYPE,
        "segment": _segment_to_json(snap.segment),
        "offered": snap.offered,
        "redundant": snap.redundant,
        "completed_at": snap.completed_at,
        "payload_length": decoder.payload_length,
        "pivot_cols": list(decoder.pivot_cols),
        "has_payload": [int(flag) for flag in decoder.has_payload],
        "matrix_bytes": len(decoder.matrix_rows),
    }
    return encode_frame(header, decoder.matrix_rows + decoder.payload_rows)


def _decoder_from_frame(frame: Frame) -> SegmentDecoderSnapshot:
    header = frame.header
    try:
        segment = _segment_from_json(header["segment"])
        matrix_bytes = int(header["matrix_bytes"])
        raw_length = header["payload_length"]
        payload_length = None if raw_length is None else int(raw_length)
        raw_completed = header["completed_at"]
        completed_at = (
            None if raw_completed is None else float(raw_completed)
        )
        snapshot = SegmentDecoderSnapshot(
            segment=segment,
            offered=int(header["offered"]),
            redundant=int(header["redundant"]),
            completed_at=completed_at,
            decoder=DecoderSnapshot(
                size=segment.size,
                payload_length=payload_length,
                pivot_cols=tuple(
                    int(col) for col in header["pivot_cols"]
                ),
                has_payload=tuple(
                    bool(flag) for flag in header["has_payload"]
                ),
                matrix_rows=bytes(frame.payload[:matrix_bytes]),
                payload_rows=bytes(frame.payload[matrix_bytes:]),
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed decoder entry: {exc}") from exc
    if matrix_bytes > len(frame.payload):
        raise CheckpointError(
            f"decoder entry declares {matrix_bytes} matrix byte(s) but "
            f"carries only {len(frame.payload)}"
        )
    return snapshot


def write_checkpoint(path: Path, state: ServerCheckpoint) -> None:
    """Atomically persist *state* to *path* (temp file + fsync + rename)."""
    header: Dict[str, Any] = {
        "type": _HEADER_TYPE,
        "format": CHECKPOINT_FORMAT,
        "seed": state.seed,
        "restarts": state.restarts,
        "time_scale": state.time_scale,
        "epoch": state.epoch,
        "marked_at": state.marked_at,
        "next_slot": state.next_slot,
        "written_at": state.written_at,
        "completed": list(state.completed),
        # JSON object keys are strings; load coerces them back to int.
        "digests": {str(sid): d for sid, d in state.digests.items()},
        "counters": dict(state.counters),
        "delay_samples": list(state.delay_samples),
        "servers_down": dict(state.servers_down),
        "total_rank": state.total_rank,
        "n_decoders": len(state.decoders),
    }
    blob = bytearray(encode_frame(header))
    for snap in state.decoders:
        blob.extend(_decoder_frame(snap))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(bytes(blob))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, str(path))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_checkpoint(path: Path) -> ServerCheckpoint:
    """Parse a checkpoint journal; raise :class:`CheckpointError` if unfit."""
    try:
        blob = Path(path).read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    decoder = FrameDecoder()
    try:
        frames = decoder.feed(blob)
        decoder.finish()
    except FrameError as exc:
        raise CheckpointError(f"torn or corrupt checkpoint: {exc}") from exc
    if not frames:
        raise CheckpointError("checkpoint file contains no frames")
    head = frames[0]
    if head.type != _HEADER_TYPE:
        raise CheckpointError(
            f"first frame is {head.type!r}, expected {_HEADER_TYPE!r}"
        )
    header = head.header
    version = header.get("format")
    if version != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint format {version!r} is not {CHECKPOINT_FORMAT!r}; "
            "refusing to restore across incompatible layouts"
        )
    try:
        raw_epoch = header["epoch"]
        raw_marked = header["marked_at"]
        servers_down = {
            str(key): float(value)
            for key, value in dict(header["servers_down"]).items()
        }
        state = ServerCheckpoint(
            seed=int(header["seed"]),
            restarts=int(header["restarts"]),
            time_scale=float(header["time_scale"]),
            epoch=None if raw_epoch is None else float(raw_epoch),
            marked_at=None if raw_marked is None else float(raw_marked),
            next_slot=int(header["next_slot"]),
            written_at=float(header["written_at"]),
            completed=tuple(int(sid) for sid in header["completed"]),
            digests={
                int(sid): str(digest)
                for sid, digest in dict(header["digests"]).items()
            },
            counters={
                str(name): int(value)
                for name, value in dict(header["counters"]).items()
            },
            delay_samples=tuple(
                float(sample) for sample in header["delay_samples"]
            ),
            servers_down=servers_down,
            total_rank=int(header["total_rank"]),
            decoders=tuple(
                _decoder_from_frame(frame) for frame in frames[1:]
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint header: {exc}") from exc
    declared = int(header.get("n_decoders", len(state.decoders)))
    if declared != len(state.decoders):
        raise CheckpointError(
            f"checkpoint declares {declared} decoder(s) but carries "
            f"{len(state.decoders)} — truncated journal"
        )
    restored_rank = sum(
        len(snap.decoder.pivot_cols) for snap in state.decoders
    )
    if restored_rank != state.total_rank:
        raise CheckpointError(
            f"rank check failed: journal carries {restored_rank}, header "
            f"declares {state.total_rank}"
        )
    return state


def checkpoint_sidecar_fields(state: ServerCheckpoint) -> Dict[str, Any]:
    """Small JSON-able summary for logs and the supervisor's stdout line."""
    return {
        "restarts": state.restarts,
        "decoders": len(state.decoders),
        "total_rank": state.total_rank,
        "completed": len(state.completed),
        "marked": state.marked_at is not None,
    }


__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointError",
    "ServerCheckpoint",
    "checkpoint_sidecar_fields",
    "load_checkpoint",
    "write_checkpoint",
]
