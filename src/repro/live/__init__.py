"""Live deployment runtime: the protocol over real asyncio TCP sockets.

Where :mod:`repro.sim` *simulates* the paper's indirect collection
protocol, this package *runs* it: every peer is an asyncio task (or a
standalone process) speaking length-prefixed framed JSON+bytes over TCP,
the GF(256) kernels of :mod:`repro.coding` encode/recode/decode real
payload bytes on the wire, and the logging servers decode and
hash-verify what they collect.  ``Parameters`` and ``FaultPlan`` are
reused verbatim — the netem-style shim in :mod:`repro.live.transport`
maps each fault channel onto transport behavior — so any simulated
operating point can be replayed live and cross-validated
(:mod:`repro.live.crossval`).

Module map:

- :mod:`repro.live.framing` — sans-IO frame codec + async stream helpers
- :mod:`repro.live.wire` — message catalog, block/params serialization
- :mod:`repro.live.ports` — port-0 binding and bounded-retry connects
- :mod:`repro.live.clock` — wall-to-sim time mapping, Poisson schedules
- :mod:`repro.live.transport` — framed connections, LRU cache, netem shim
- :mod:`repro.live.peer` / :mod:`repro.live.server` — the two node roles
- :mod:`repro.live.harness` — single-box swarm orchestration
- :mod:`repro.live.livemetrics` — sim-axis measurement + aggregation
- :mod:`repro.live.crossval` — sim-vs-live tolerance comparison
- :mod:`repro.live.cli` — ``repro live serve|peer|swarm``
"""

from repro.live.clock import LiveClock, PoissonSchedule
from repro.live.crossval import CrossValReport, compare_reports
from repro.live.framing import (
    Frame,
    FrameDecoder,
    FrameError,
    FrameGarbage,
    FrameTooLarge,
    FrameTruncated,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.live.harness import live_cell, run_swarm, validate_live_params
from repro.live.livemetrics import aggregate_report
from repro.live.peer import LivePeer
from repro.live.server import LiveLoggingServer
from repro.live.transport import FramedConnection, NetemShim

__all__ = [
    "CrossValReport",
    "Frame",
    "FrameDecoder",
    "FrameError",
    "FrameGarbage",
    "FrameTooLarge",
    "FrameTruncated",
    "FramedConnection",
    "LiveClock",
    "LiveLoggingServer",
    "LivePeer",
    "NetemShim",
    "PoissonSchedule",
    "aggregate_report",
    "compare_reports",
    "encode_frame",
    "live_cell",
    "read_frame",
    "run_swarm",
    "validate_live_params",
    "write_frame",
]
