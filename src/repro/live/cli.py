"""``repro live`` — deploy the protocol over real sockets.

Three subcommands map onto the three deployment shapes:

- ``repro live swarm`` — everything in one process (server + N peer
  tasks on loopback), run for a fixed window, report to stdout.  This is
  the E-LIVE workhorse and the CI smoke job.
- ``repro live serve`` — a standalone logging-server registry process;
  peers connect to it from anywhere (the docker-compose topology).
- ``repro live peer`` — one standalone peer process; fetches the entire
  session configuration from the server's WELCOME frame, so it needs
  nothing but the server address.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import Any, Dict, List, Optional

from repro.core.params import MODE_RLNC, Parameters
from repro.faults.plan import FaultPlan
from repro.live.harness import run_swarm
from repro.live.peer import LivePeer
from repro.live.server import LiveLoggingServer


def _add_params_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n-peers", type=int, default=64)
    parser.add_argument("--arrival-rate", type=float, default=0.25,
                        help="per-peer block injection rate lambda")
    parser.add_argument("--gossip-rate", type=float, default=1.0,
                        help="per-peer gossip rate mu")
    parser.add_argument("--deletion-rate", type=float, default=0.25,
                        help="per-block TTL rate gamma")
    parser.add_argument("--capacity", type=float, default=1.0,
                        help="normalized server capacity c")
    parser.add_argument("--segment-size", type=int, default=2)
    parser.add_argument("--n-servers", type=int, default=4)
    parser.add_argument("--payload-bytes", type=int, default=64)
    parser.add_argument("--gossip-loss", type=float, default=0.0)
    parser.add_argument("--pull-loss", type=float, default=0.0)
    parser.add_argument("--pollution", type=float, default=0.0)


def _params_from_args(args: argparse.Namespace) -> Parameters:
    faults: Optional[FaultPlan] = None
    if args.gossip_loss or args.pull_loss or args.pollution:
        faults = FaultPlan(
            gossip_loss_rate=args.gossip_loss,
            pull_loss_rate=args.pull_loss,
            pollution_fraction=args.pollution,
        )
    return Parameters(
        n_peers=args.n_peers,
        arrival_rate=args.arrival_rate,
        gossip_rate=args.gossip_rate,
        deletion_rate=args.deletion_rate,
        normalized_capacity=args.capacity,
        segment_size=args.segment_size,
        n_servers=args.n_servers,
        mode=MODE_RLNC,
        payload_bytes=args.payload_bytes,
        faults=faults,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro live",
        description="run the collection protocol over real TCP sockets",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    swarm = sub.add_parser("swarm", help="single-process swarm on loopback")
    _add_params_flags(swarm)
    swarm.add_argument("--seed", type=int, default=1)
    swarm.add_argument("--warmup", type=float, default=4.0,
                       help="simulated warmup before MARK")
    swarm.add_argument("--duration", type=float, default=8.0,
                       help="simulated measurement window")
    swarm.add_argument("--time-scale", type=float, default=1.0,
                       help="simulated time units per wall second")
    swarm.add_argument("--json", action="store_true",
                       help="emit the full report as JSON")

    serve = sub.add_parser("serve", help="standalone logging-server registry")
    _add_params_flags(serve)
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--host", default="0.0.0.0")
    serve.add_argument("--port", type=int, default=0,
                       help="0 binds an ephemeral port (printed on stdout)")
    serve.add_argument("--time-scale", type=float, default=1.0)
    serve.add_argument("--warmup", type=float, default=4.0)
    serve.add_argument("--duration", type=float, default=8.0)
    serve.add_argument("--expect-peers", type=int, default=None,
                       help="start once this many peers joined "
                            "(default: n-peers)")

    peer = sub.add_parser("peer", help="standalone peer process")
    peer.add_argument("--server-host", required=True)
    peer.add_argument("--server-port", type=int, required=True)
    peer.add_argument("--slot", type=int, default=None,
                      help="topology slot (default: server-assigned)")
    peer.add_argument("--listen-host", default="127.0.0.1",
                      help="address this peer advertises to the swarm")
    peer.add_argument("--count", type=int, default=1,
                      help="run this many peer tasks in one process")
    return parser


async def _run_serve(args: argparse.Namespace) -> int:
    # Install the drain handlers before anything is observable from the
    # outside (the endpoint line): once a caller can see the port, a
    # SIGTERM must drain gracefully rather than hit the default handler.
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    params = _params_from_args(args)
    server = LiveLoggingServer(
        params,
        args.seed,
        time_scale=args.time_scale,
        host=args.host,
        port=args.port,
    )
    await server.start()
    print(json.dumps({"host": args.host, "port": server.port}), flush=True)
    try:
        expected = args.expect_peers or params.n_peers
        join = asyncio.ensure_future(server.wait_for_peers(expected))
        stopper = asyncio.ensure_future(stop.wait())
        await asyncio.wait(
            {join, stopper}, return_when=asyncio.FIRST_COMPLETED
        )
        if stop.is_set():
            join.cancel()
            await asyncio.gather(join, return_exceptions=True)
            return 0
        stopper.cancel()
        await asyncio.gather(stopper, return_exceptions=True)
        await server.begin()
        await asyncio.wait_for(
            stop.wait(),
            timeout=(args.warmup + args.duration + 5.0) / args.time_scale,
        )
        return 0
    except asyncio.TimeoutError:
        return 0
    finally:
        await server.stop_protocol()
        await server.close()


async def _run_peer(args: argparse.Namespace) -> int:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    peers: List[LivePeer] = []
    for index in range(args.count):
        slot = None if args.slot is None else args.slot + index
        peers.append(
            LivePeer(
                slot, None, None, args.server_host, args.server_port,
                listen_host=args.listen_host,
            )
        )
    try:
        for peer in peers:
            await peer.start()
        print(
            json.dumps({"slots": [peer.slot for peer in peers]}), flush=True
        )
        waits = [asyncio.ensure_future(p.stopped.wait()) for p in peers]
        stopper = asyncio.ensure_future(stop.wait())
        await asyncio.wait(
            {*waits, stopper}, return_when=asyncio.FIRST_COMPLETED
        )
        for task in [*waits, stopper]:
            task.cancel()
        await asyncio.gather(*waits, stopper, return_exceptions=True)
        return 0
    finally:
        for peer in peers:
            await peer.close()


def _print_summary(report: Dict[str, Any]) -> None:
    lines = [
        ("peers", "n_peers"),
        ("window (sim units)", "window"),
        ("segments completed", "segments_completed"),
        ("normalized throughput", "normalized_throughput"),
        ("efficiency", "efficiency"),
        ("mean block delay", "mean_block_delay"),
        ("mean buffer occupancy", "mean_buffer_occupancy"),
        ("hash verified / failed",
         ("hash_verified", "hash_failures")),
    ]
    print("live swarm report")
    for label, key in lines:
        if isinstance(key, tuple):
            value = " / ".join(str(report.get(k)) for k in key)
        else:
            raw = report.get(key)
            value = (
                f"{raw:.4f}" if isinstance(raw, float) else str(raw)
            )
        print(f"  {label:<24} {value}")


def live_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro live ...``."""
    args = _build_parser().parse_args(argv)
    if args.command == "swarm":
        report = asyncio.run(
            run_swarm(
                _params_from_args(args),
                args.seed,
                warmup=args.warmup,
                duration=args.duration,
                time_scale=args.time_scale,
            )
        )
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            _print_summary(report)
        return 0
    if args.command == "serve":
        return asyncio.run(_run_serve(args))
    if args.command == "peer":
        return asyncio.run(_run_peer(args))
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(live_main())
