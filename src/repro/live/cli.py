"""``repro live`` — deploy the protocol over real sockets.

Three subcommands map onto the three deployment shapes:

- ``repro live swarm`` — everything in one process (server + N peer
  tasks on loopback), run for a fixed window, report to stdout.  This is
  the E-LIVE workhorse and the CI smoke job.
- ``repro live serve`` — a standalone logging-server registry process;
  peers connect to it from anywhere (the docker-compose topology).
- ``repro live peer`` — one standalone peer process; fetches the entire
  session configuration from the server's WELCOME frame, so it needs
  nothing but the server address.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.params import MODE_RLNC, Parameters
from repro.faults.plan import PROCESS_FAULT_KINDS, FaultPlan
from repro.live import wire
from repro.live.harness import run_swarm, validate_live_params
from repro.live.livemetrics import aggregate_report
from repro.live.peer import LivePeer
from repro.live.server import LiveLoggingServer
from repro.live.supervisor import run_supervised_swarm


def parse_proc_fault(spec: str) -> Tuple[str, float, float, float]:
    """Parse one ``KIND@AT[:DURATION[:FRACTION]]`` process-fault spec.

    Examples: ``kill-server@10``, ``stop-server@8:2``,
    ``kill-peers@16:0:0.5`` (kill half the peer processes at t=16).
    """
    try:
        kind, _, rest = spec.partition("@")
        if not rest:
            raise ValueError("missing '@AT'")
        parts = rest.split(":")
        if len(parts) > 3:
            raise ValueError("too many ':' fields")
        at = float(parts[0])
        duration = float(parts[1]) if len(parts) > 1 else 0.0
        fraction = float(parts[2]) if len(parts) > 2 else 0.0
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"bad process fault {spec!r}: {exc} "
            f"(format: KIND@AT[:DURATION[:FRACTION]], "
            f"kinds: {', '.join(sorted(PROCESS_FAULT_KINDS))})"
        ) from None
    return kind, at, duration, fraction


def _add_params_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n-peers", type=int, default=64)
    parser.add_argument("--arrival-rate", type=float, default=0.25,
                        help="per-peer block injection rate lambda")
    parser.add_argument("--gossip-rate", type=float, default=1.0,
                        help="per-peer gossip rate mu")
    parser.add_argument("--deletion-rate", type=float, default=0.25,
                        help="per-block TTL rate gamma")
    parser.add_argument("--capacity", type=float, default=1.0,
                        help="normalized server capacity c")
    parser.add_argument("--segment-size", type=int, default=2)
    parser.add_argument("--n-servers", type=int, default=4)
    parser.add_argument("--payload-bytes", type=int, default=64)
    parser.add_argument("--gossip-loss", type=float, default=0.0)
    parser.add_argument("--pull-loss", type=float, default=0.0)
    parser.add_argument("--pollution", type=float, default=0.0)


def _params_from_args(args: argparse.Namespace) -> Parameters:
    faults: Optional[FaultPlan] = None
    process_faults = tuple(getattr(args, "proc_fault", None) or ())
    if args.gossip_loss or args.pull_loss or args.pollution or process_faults:
        faults = FaultPlan(
            gossip_loss_rate=args.gossip_loss,
            pull_loss_rate=args.pull_loss,
            pollution_fraction=args.pollution,
            process_faults=process_faults,
            process_restart_latency=getattr(args, "restart_latency", 1.0),
        )
    return Parameters(
        n_peers=args.n_peers,
        arrival_rate=args.arrival_rate,
        gossip_rate=args.gossip_rate,
        deletion_rate=args.deletion_rate,
        normalized_capacity=args.capacity,
        segment_size=args.segment_size,
        n_servers=args.n_servers,
        mode=MODE_RLNC,
        payload_bytes=args.payload_bytes,
        faults=faults,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro live",
        description="run the collection protocol over real TCP sockets",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    swarm = sub.add_parser("swarm", help="single-process swarm on loopback")
    _add_params_flags(swarm)
    swarm.add_argument("--seed", type=int, default=1)
    swarm.add_argument("--warmup", type=float, default=4.0,
                       help="simulated warmup before MARK")
    swarm.add_argument("--duration", type=float, default=8.0,
                       help="simulated measurement window")
    swarm.add_argument("--time-scale", type=float, default=1.0,
                       help="simulated time units per wall second")
    swarm.add_argument("--json", action="store_true",
                       help="emit the full report as JSON")
    swarm.add_argument("--supervised", action="store_true",
                       help="run server and peers as monitored OS "
                            "processes with crash-restart supervision")
    swarm.add_argument("--peer-procs", type=int, default=4,
                       help="peer processes in --supervised mode")
    swarm.add_argument("--proc-fault", type=parse_proc_fault,
                       action="append", default=None,
                       metavar="KIND@AT[:DUR[:FRAC]]",
                       help="schedule a process fault (repeatable; "
                            "requires --supervised)")
    swarm.add_argument("--restart-latency", type=float, default=1.0,
                       help="sim-time restart latency the simulator "
                            "charges per kill-server fault")

    serve = sub.add_parser("serve", help="standalone logging-server registry")
    _add_params_flags(serve)
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--host", default="0.0.0.0")
    serve.add_argument("--port", type=int, default=0,
                       help="0 binds an ephemeral port (printed on stdout)")
    serve.add_argument("--time-scale", type=float, default=1.0)
    serve.add_argument("--warmup", type=float, default=4.0)
    serve.add_argument("--duration", type=float, default=8.0)
    serve.add_argument("--expect-peers", type=int, default=None,
                       help="start once this many peers joined "
                            "(default: n-peers)")
    serve.add_argument("--params-json", default=None,
                       help="load full session Parameters from this JSON "
                            "file (overrides the parameter flags)")
    serve.add_argument("--checkpoint", default=None,
                       help="decode-state journal path; an existing file "
                            "restores and resumes the window")
    serve.add_argument("--checkpoint-interval", type=float, default=1.0,
                       help="wall seconds between checkpoint writes")
    serve.add_argument("--report", action="store_true",
                       help="drive one measured window (warmup, MARK, "
                            "duration) and print the report as a JSON "
                            "line; emits started/resumed/marked events")

    peer = sub.add_parser("peer", help="standalone peer process")
    peer.add_argument("--server-host", required=True)
    peer.add_argument("--server-port", type=int, required=True)
    peer.add_argument("--slot", type=int, default=None,
                      help="topology slot (default: server-assigned)")
    peer.add_argument("--listen-host", default="127.0.0.1",
                      help="address this peer advertises to the swarm")
    peer.add_argument("--count", type=int, default=1,
                      help="run this many peer tasks in one process")
    return parser


def _serve_params(args: argparse.Namespace) -> Parameters:
    if args.params_json:
        payload = json.loads(Path(args.params_json).read_text())
        return wire.params_from_wire(payload)
    return _params_from_args(args)


async def _run_serve_report(
    args: argparse.Namespace,
    server: LiveLoggingServer,
    stop: "asyncio.Event",
) -> int:
    """Drive one measured window from inside the serve process.

    Fresh start: wait for the peer cohort, begin, MARK at ``warmup``,
    report at ``warmup + duration``. Supervised respawn (the checkpoint
    restored state in ``server.start()``): resume the running window on
    the restored epoch — peers rejoin on their own schedule, MARK is
    skipped if it already happened.
    """
    clock = server.clock
    if server.restarts > 0:
        await server.resume()
        print(json.dumps({
            "type": "resumed",
            "epoch": clock.epoch,
            "restarts": server.restarts,
            "restored_rank": server.restored_rank,
        }), flush=True)
    else:
        expected = args.expect_peers or server.params.n_peers
        join = asyncio.ensure_future(server.wait_for_peers(expected))
        stopper = asyncio.ensure_future(stop.wait())
        await asyncio.wait(
            {join, stopper}, return_when=asyncio.FIRST_COMPLETED
        )
        stopper.cancel()
        await asyncio.gather(stopper, return_exceptions=True)
        if stop.is_set():
            join.cancel()
            await asyncio.gather(join, return_exceptions=True)
            return 0
        await server.begin()
        print(json.dumps(
            {"type": "started", "epoch": clock.epoch}
        ), flush=True)
    if server.marked_at is None:
        await clock.sleep_until(args.warmup)
        await server.mark()
        print(json.dumps(
            {"type": "marked", "at": server.marked_at}
        ), flush=True)
    mark_at = server.marked_at
    assert mark_at is not None
    await clock.sleep_until(args.warmup + args.duration)
    await server.stop_protocol()
    stop_at = clock.now()
    window = stop_at - mark_at
    peer_summaries: List[Dict[str, float]] = []
    for slot in sorted(server.peers):
        # Chaos may have taken peers out for good: collect best-effort.
        try:
            peer_summaries.append(await server.request_metrics(slot))
        except (ConnectionError, OSError, asyncio.TimeoutError, KeyError):
            continue
    report = aggregate_report(
        server.params,
        window,
        server.stats.summary(stop_at, window),
        peer_summaries,
        extras={
            "engine": "live",
            "time_scale": clock.time_scale,
            "server_restarts": server.restarts,
            "restored_rank": server.restored_rank,
            "checkpoint_writes": server.checkpoint_writes,
            "peers_reporting": len(peer_summaries),
        },
    )
    print(json.dumps({"type": "report", "report": report}), flush=True)
    return 0


async def _run_serve(args: argparse.Namespace) -> int:
    # Install the drain handlers before anything is observable from the
    # outside (the endpoint line): once a caller can see the port, a
    # SIGTERM must drain gracefully rather than hit the default handler.
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    params = _serve_params(args)
    server = LiveLoggingServer(
        params,
        args.seed,
        time_scale=args.time_scale,
        host=args.host,
        port=args.port,
        checkpoint_path=(
            Path(args.checkpoint) if args.checkpoint else None
        ),
        checkpoint_interval=args.checkpoint_interval,
    )
    await server.start()
    print(json.dumps({"host": args.host, "port": server.port}), flush=True)
    if args.report:
        try:
            return await _run_serve_report(args, server, stop)
        finally:
            await server.stop_protocol()
            await server.close()
    try:
        expected = args.expect_peers or params.n_peers
        join = asyncio.ensure_future(server.wait_for_peers(expected))
        stopper = asyncio.ensure_future(stop.wait())
        await asyncio.wait(
            {join, stopper}, return_when=asyncio.FIRST_COMPLETED
        )
        if stop.is_set():
            join.cancel()
            await asyncio.gather(join, return_exceptions=True)
            return 0
        stopper.cancel()
        await asyncio.gather(stopper, return_exceptions=True)
        await server.begin()
        await asyncio.wait_for(
            stop.wait(),
            timeout=(args.warmup + args.duration + 5.0) / args.time_scale,
        )
        return 0
    except asyncio.TimeoutError:
        return 0
    finally:
        await server.stop_protocol()
        await server.close()


async def _run_peer(args: argparse.Namespace) -> int:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    peers: List[LivePeer] = []
    for index in range(args.count):
        slot = None if args.slot is None else args.slot + index
        peers.append(
            LivePeer(
                slot, None, None, args.server_host, args.server_port,
                listen_host=args.listen_host,
            )
        )
    try:
        for peer in peers:
            await peer.start()
        print(
            json.dumps({"slots": [peer.slot for peer in peers]}), flush=True
        )
        waits = [asyncio.ensure_future(p.stopped.wait()) for p in peers]
        stopper = asyncio.ensure_future(stop.wait())
        await asyncio.wait(
            {*waits, stopper}, return_when=asyncio.FIRST_COMPLETED
        )
        for task in [*waits, stopper]:
            task.cancel()
        await asyncio.gather(*waits, stopper, return_exceptions=True)
        return 0
    finally:
        for peer in peers:
            await peer.close()


def _print_summary(report: Dict[str, Any]) -> None:
    lines = [
        ("peers", "n_peers"),
        ("window (sim units)", "window"),
        ("segments completed", "segments_completed"),
        ("normalized throughput", "normalized_throughput"),
        ("efficiency", "efficiency"),
        ("mean block delay", "mean_block_delay"),
        ("mean buffer occupancy", "mean_buffer_occupancy"),
        ("hash verified / failed",
         ("hash_verified", "hash_failures")),
    ]
    print("live swarm report")
    for label, key in lines:
        if isinstance(key, tuple):
            value = " / ".join(str(report.get(k)) for k in key)
        else:
            raw = report.get(key)
            value = (
                f"{raw:.4f}" if isinstance(raw, float) else str(raw)
            )
        print(f"  {label:<24} {value}")


def live_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro live ...``."""
    args = _build_parser().parse_args(argv)
    if args.command == "swarm":
        params = _params_from_args(args)
        if args.supervised:
            validate_live_params(params, supervised=True)
            report = asyncio.run(
                run_supervised_swarm(
                    params,
                    args.seed,
                    warmup=args.warmup,
                    duration=args.duration,
                    time_scale=args.time_scale,
                    peer_procs=args.peer_procs,
                )
            )
        else:
            report = asyncio.run(
                run_swarm(
                    params,
                    args.seed,
                    warmup=args.warmup,
                    duration=args.duration,
                    time_scale=args.time_scale,
                )
            )
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            _print_summary(report)
        return 0
    if args.command == "serve":
        return asyncio.run(_run_serve(args))
    if args.command == "peer":
        return asyncio.run(_run_peer(args))
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(live_main())
