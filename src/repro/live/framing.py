"""Length-prefixed JSON+bytes framing for the live runtime.

Every message on a live-runtime TCP stream is one *frame*::

    +-------+------------+-------------+---------------+---------------+
    | magic | header len | payload len | header (JSON) | payload bytes |
    | 4 B   | u32 BE     | u32 BE      | header-len B  | payload-len B |
    +-------+------------+-------------+---------------+---------------+

The header is a compact, sorted-key JSON object (always a dict, always
carrying a ``"type"`` key by convention — see :mod:`repro.live.wire`); the
payload is opaque bytes (coefficient vectors and coded payload rows travel
here so GF(256) data never round-trips through JSON).

Failure behavior is part of the contract: a reader faced with a bad magic,
an oversized length, an unparseable header, or an EOF mid-frame raises a
:class:`FrameError` subclass *immediately* — it never blocks waiting for
bytes that cannot complete a valid frame.  The sans-IO
:class:`FrameDecoder` exposes the same state machine for byte-level fuzz
tests; :func:`read_frame` / :func:`write_frame` adapt it to asyncio
streams.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

#: Frame preamble; a connection speaking anything else fails fast.
MAGIC = b"RPLV"

#: Big-endian (header_len, payload_len) length prefix.
_LENGTHS = struct.Struct(">II")

#: Fixed prefix size: magic + the two length words.
PREFIX_SIZE = len(MAGIC) + _LENGTHS.size

#: Upper bounds enforced on both ends; a peer announcing more is treated
#: as garbage, not as a request to allocate.
MAX_HEADER_BYTES = 1 << 20
MAX_PAYLOAD_BYTES = 1 << 26


class FrameError(Exception):
    """Base class of every framing protocol error."""


class FrameGarbage(FrameError):
    """The stream does not contain a valid frame (bad magic/JSON header)."""


class FrameTooLarge(FrameError):
    """A declared header or payload length exceeds the protocol bounds."""


class FrameTruncated(FrameError):
    """The stream ended mid-frame (EOF before the declared bytes arrived)."""


@dataclass(frozen=True)
class Frame:
    """One decoded frame: a JSON header dict plus opaque payload bytes."""

    header: Mapping[str, Any]
    payload: bytes = b""

    @property
    def type(self) -> str:
        """The conventional ``"type"`` key ('' when absent)."""
        value = self.header.get("type", "")
        return value if isinstance(value, str) else ""


def _encode_header(header: Mapping[str, Any]) -> bytes:
    try:
        return json.dumps(
            dict(header), separators=(",", ":"), sort_keys=True,
            allow_nan=False,
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"unserializable frame header: {exc}") from exc


def _parse_header(data: bytes) -> Dict[str, Any]:
    try:
        header = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameGarbage(f"frame header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise FrameGarbage(
            f"frame header must be a JSON object, got {type(header).__name__}"
        )
    return header


def _check_lengths(header_len: int, payload_len: int) -> None:
    if header_len > MAX_HEADER_BYTES:
        raise FrameTooLarge(
            f"declared header length {header_len} exceeds "
            f"{MAX_HEADER_BYTES}"
        )
    if payload_len > MAX_PAYLOAD_BYTES:
        raise FrameTooLarge(
            f"declared payload length {payload_len} exceeds "
            f"{MAX_PAYLOAD_BYTES}"
        )
    if header_len == 0:
        raise FrameGarbage("declared header length is 0 (no JSON object)")


def encode_frame(header: Mapping[str, Any], payload: bytes = b"") -> bytes:
    """Serialize one frame to wire bytes."""
    head = _encode_header(header)
    if len(head) > MAX_HEADER_BYTES:
        raise FrameTooLarge(
            f"encoded header is {len(head)} bytes (max {MAX_HEADER_BYTES})"
        )
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise FrameTooLarge(
            f"payload is {len(payload)} bytes (max {MAX_PAYLOAD_BYTES})"
        )
    return MAGIC + _LENGTHS.pack(len(head), len(payload)) + head + payload


@dataclass
class FrameDecoder:
    """Sans-IO incremental frame parser.

    Feed arbitrary byte chunks; complete frames come back in order.  The
    decoder validates eagerly — magic and length bounds are checked as soon
    as the prefix is buffered, so garbage input raises on the offending
    :meth:`feed` call instead of accumulating forever.
    """

    _buffer: bytearray = field(default_factory=bytearray)
    _dead: bool = False
    _truncated: bool = False
    _eof: bool = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    @property
    def truncated(self) -> bool:
        """The stream ended mid-frame (an abrupt disconnect, not garbage)."""
        return self._truncated

    def feed(self, data: bytes) -> List[Frame]:
        """Consume *data*; return every frame it completes."""
        if self._truncated:
            raise FrameTruncated(
                "decoder saw EOF mid-frame; the connection must be re-dialed"
            )
        if self._dead:
            raise FrameGarbage("decoder poisoned by an earlier protocol error")
        if self._eof:
            raise FrameTruncated("bytes fed after EOF was declared")
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            frame = self._try_extract()
            if frame is None:
                return frames
            frames.append(frame)

    def _try_extract(self) -> Optional[Frame]:
        buf = self._buffer
        if len(buf) < len(MAGIC):
            if not MAGIC.startswith(bytes(buf)):
                self._poison()
                raise FrameGarbage(f"bad frame magic {bytes(buf)!r}")
            return None
        if bytes(buf[: len(MAGIC)]) != MAGIC:
            self._poison()
            raise FrameGarbage(f"bad frame magic {bytes(buf[:4])!r}")
        if len(buf) < PREFIX_SIZE:
            return None
        header_len, payload_len = _LENGTHS.unpack_from(buf, len(MAGIC))
        try:
            _check_lengths(header_len, payload_len)
        except FrameError:
            self._poison()
            raise
        total = PREFIX_SIZE + header_len + payload_len
        if len(buf) < total:
            return None
        head = bytes(buf[PREFIX_SIZE : PREFIX_SIZE + header_len])
        payload = bytes(buf[PREFIX_SIZE + header_len : total])
        del buf[:total]
        try:
            header = _parse_header(head)
        except FrameError:
            self._poison()
            raise
        return Frame(header=header, payload=payload)

    def finish(self) -> None:
        """Declare EOF; raises :class:`FrameTruncated` mid-frame.

        A mid-frame EOF is an *abrupt disconnect* — the peer crashed or the
        connection dropped — not a protocol violation, so the decoder is
        marked :attr:`truncated` (every later call keeps raising
        :class:`FrameTruncated`, never :class:`FrameGarbage`): handlers
        treat it as a reconnect signal rather than evidence of a broken
        speaker.
        """
        if self._buffer:
            pending = len(self._buffer)
            self._truncated = True
            self._buffer.clear()
            raise FrameTruncated(
                f"stream ended with {pending} byte(s) of an "
                "incomplete frame buffered"
            )
        self._eof = True

    def _poison(self) -> None:
        self._dead = True
        self._buffer.clear()


async def read_frame(reader: asyncio.StreamReader) -> Optional[Frame]:
    """Read exactly one frame; ``None`` on clean EOF at a frame boundary.

    EOF mid-frame raises :class:`FrameTruncated`; a bad magic or header
    raises :class:`FrameGarbage`; absurd lengths raise
    :class:`FrameTooLarge`.  The caller never hangs on a stream that cannot
    produce a complete valid frame — every wait is for bytes the prefix
    declared.
    """
    try:
        prefix = await reader.readexactly(PREFIX_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameTruncated(
            f"stream ended {len(exc.partial)} byte(s) into a frame prefix"
        ) from exc
    if prefix[: len(MAGIC)] != MAGIC:
        raise FrameGarbage(f"bad frame magic {prefix[:len(MAGIC)]!r}")
    header_len, payload_len = _LENGTHS.unpack_from(prefix, len(MAGIC))
    _check_lengths(header_len, payload_len)
    try:
        body = await reader.readexactly(header_len + payload_len)
    except asyncio.IncompleteReadError as exc:
        raise FrameTruncated(
            f"stream ended {len(exc.partial)}/{header_len + payload_len} "
            "byte(s) into a frame body"
        ) from exc
    header = _parse_header(body[:header_len])
    return Frame(header=header, payload=body[header_len:])


async def write_frame(
    writer: asyncio.StreamWriter,
    header: Mapping[str, Any],
    payload: bytes = b"",
) -> None:
    """Serialize and send one frame, honoring transport backpressure."""
    writer.write(encode_frame(header, payload))
    await writer.drain()
