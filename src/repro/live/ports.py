"""Port-collision-safe binding and connection helpers.

Every live-runtime listener — in production code *and* in every test —
binds to **port 0** and propagates the kernel-assigned ephemeral port, so
parallel test runs and busy CI hosts can never collide on a hard-coded
port.  :class:`Backoff` below is the single shared retry policy for every
place a live component dials out or binds: the residual raciness that
port 0 cannot remove (a listener that has not finished ``listen()`` by
the time its first client connects), explicit-port bind races (the
docker-compose topology, a supervised server respawning onto its pinned
port), and peer reconnects after a crash.
"""

from __future__ import annotations

import asyncio
import errno
import math
import random
from typing import (
    Any,
    Awaitable,
    Callable,
    Iterator,
    Optional,
    Tuple,
    Type,
    TypeVar,
)

#: Default bounded-retry budget for listeners and connects.
DEFAULT_ATTEMPTS = 8

#: Initial retry backoff (doubles per attempt, so the default budget waits
#: about 6 s total before giving up).
DEFAULT_BACKOFF = 0.05

#: Default ceiling on a single backoff sleep.
DEFAULT_CAP = 2.0

#: Errnos worth retrying on bind (another process grabbed the port between
#: our probe and our bind — only possible with an explicit non-zero port).
_RETRYABLE_BIND = {errno.EADDRINUSE, errno.EADDRNOTAVAIL}

ClientHandler = Callable[
    [asyncio.StreamReader, asyncio.StreamWriter], Awaitable[None]
]

T = TypeVar("T")


class Backoff:
    """One bounded exponential-backoff policy for every outbound dial.

    Delays start at ``initial`` and multiply by ``factor`` up to ``cap``.
    The budget is bounded two ways: ``attempts`` caps the number of tries
    (``0`` means unbounded, in which case a ``deadline`` is required) and
    ``deadline`` caps total wall seconds from the first try.  When an
    ``rng`` is supplied (a named registry substream — never an ad-hoc
    ``random.Random``), each sleep is jittered over ``[0.5, 1.0]`` of its
    nominal value so a cohort of restarted peers does not dial back in
    lock-step.
    """

    def __init__(
        self,
        initial: float = DEFAULT_BACKOFF,
        cap: float = DEFAULT_CAP,
        factor: float = 2.0,
        attempts: int = DEFAULT_ATTEMPTS,
        deadline: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not (initial > 0 and math.isfinite(initial)):
            raise ValueError(f"initial must be finite and > 0, got {initial}")
        if cap < initial:
            raise ValueError(f"cap {cap} must be >= initial {initial}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if attempts < 0:
            raise ValueError(f"attempts must be >= 0, got {attempts}")
        if attempts == 0 and deadline is None:
            raise ValueError("unbounded attempts require a deadline")
        if deadline is not None and not (deadline > 0):
            raise ValueError(f"deadline must be > 0, got {deadline}")
        self.initial = initial
        self.cap = cap
        self.factor = factor
        self.attempts = attempts
        self.deadline = deadline
        self.rng = rng

    def delays(self) -> Iterator[float]:
        """Yield the sleep before each retry (one fewer than attempts)."""
        delay = self.initial
        produced = 0
        while self.attempts == 0 or produced < self.attempts - 1:
            if self.rng is None:
                yield delay
            else:
                yield delay * (0.5 + 0.5 * self.rng.random())
            delay = min(delay * self.factor, self.cap)
            produced += 1

    async def retry(
        self,
        op: Callable[[], Awaitable[T]],
        retry_on: Tuple[Type[BaseException], ...],
        should_retry: Optional[Callable[[BaseException], bool]] = None,
    ) -> T:
        """Run *op* until it succeeds or the budget is spent.

        Only exceptions matching *retry_on* (and, when given, accepted by
        *should_retry*) are retried; anything else — and the final
        attempt's error — propagates unchanged.
        """
        loop = asyncio.get_running_loop()
        give_up_at = (
            None if self.deadline is None else loop.time() + self.deadline
        )
        delays = self.delays()
        while True:
            try:
                return await op()
            except retry_on as exc:
                if should_retry is not None and not should_retry(exc):
                    raise
                delay = next(delays, None)
                if delay is None:
                    raise
                if give_up_at is not None and loop.time() + delay > give_up_at:
                    raise
                await asyncio.sleep(delay)


def server_port(server: asyncio.AbstractServer) -> int:
    """The (ephemeral) port an asyncio server actually bound."""
    sockets = server.sockets
    if not sockets:
        raise RuntimeError("server has no bound sockets")
    port = sockets[0].getsockname()[1]
    return int(port)


async def start_server(
    handler: ClientHandler,
    host: str = "127.0.0.1",
    port: int = 0,
    attempts: int = DEFAULT_ATTEMPTS,
) -> Tuple[asyncio.AbstractServer, int]:
    """Start a TCP server, retrying transient bind races; returns its port.

    With the default ``port=0`` the kernel picks a free ephemeral port and
    the first attempt virtually always succeeds; explicit ports (the
    docker-compose topology, a respawned server re-binding its pinned
    port while the dead process's socket drains) get the retry policy.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")

    def retryable(exc: BaseException) -> bool:
        return isinstance(exc, OSError) and exc.errno in _RETRYABLE_BIND

    async def bind() -> asyncio.AbstractServer:
        return await asyncio.start_server(handler, host=host, port=port)

    policy = Backoff(attempts=attempts)
    server = await policy.retry(bind, (OSError,), should_retry=retryable)
    return server, server_port(server)


async def connect(
    host: str,
    port: int,
    attempts: int = DEFAULT_ATTEMPTS,
    backoff: float = DEFAULT_BACKOFF,
    policy: Optional[Backoff] = None,
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a TCP connection under a bounded retry policy.

    Retries connection-refused/reset (the listener may still be coming up,
    which is the one race ``port=0`` cannot close); every other error, and
    the final attempt's error, propagate to the caller.  Callers with a
    deadline or a jitter substream pass an explicit *policy*; the
    ``attempts``/``backoff`` shorthand keeps the common case terse.
    """
    if policy is None:
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        policy = Backoff(initial=backoff, attempts=attempts)

    async def dial() -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.open_connection(host=host, port=port)

    return await policy.retry(
        dial, (ConnectionRefusedError, ConnectionResetError, OSError)
    )


async def close_writer(writer: asyncio.StreamWriter) -> None:
    """Close one stream writer, absorbing teardown races.

    The peer may have closed first (connection reset) — that is a normal
    shutdown order in a swarm, not an error.  ``wait_closed()`` is always
    awaited so tests running with asyncio debug mode see no unclosed
    transports.
    """
    try:
        if not writer.is_closing():
            writer.close()
        await writer.wait_closed()
    except (ConnectionError, asyncio.TimeoutError, OSError):
        pass


def describe_endpoint(obj: Any) -> str:
    """Best-effort ``host:port`` of a writer/socket for log messages."""
    try:
        host, port = obj.get_extra_info("peername")[:2]
        return f"{host}:{port}"
    except Exception:
        return "<unknown>"
