"""Port-collision-safe binding and connection helpers.

Every live-runtime listener — in production code *and* in every test —
binds to **port 0** and propagates the kernel-assigned ephemeral port, so
parallel test runs and busy CI hosts can never collide on a hard-coded
port.  The bounded-retry helpers below are the single shared path for the
residual raciness that port 0 cannot remove (a listener that has not
finished ``listen()`` by the time its first client connects).
"""

from __future__ import annotations

import asyncio
import errno
from typing import Any, Awaitable, Callable, Tuple

#: Default bounded-retry budget for listeners and connects.
DEFAULT_ATTEMPTS = 8

#: Initial retry backoff (doubles per attempt, so the default budget waits
#: about 6 s total before giving up).
DEFAULT_BACKOFF = 0.05

#: Errnos worth retrying on bind (another process grabbed the port between
#: our probe and our bind — only possible with an explicit non-zero port).
_RETRYABLE_BIND = {errno.EADDRINUSE, errno.EADDRNOTAVAIL}

ClientHandler = Callable[
    [asyncio.StreamReader, asyncio.StreamWriter], Awaitable[None]
]


def server_port(server: asyncio.AbstractServer) -> int:
    """The (ephemeral) port an asyncio server actually bound."""
    sockets = server.sockets
    if not sockets:
        raise RuntimeError("server has no bound sockets")
    port = sockets[0].getsockname()[1]
    return int(port)


async def start_server(
    handler: ClientHandler,
    host: str = "127.0.0.1",
    port: int = 0,
    attempts: int = DEFAULT_ATTEMPTS,
) -> Tuple[asyncio.AbstractServer, int]:
    """Start a TCP server, retrying transient bind races; returns its port.

    With the default ``port=0`` the kernel picks a free ephemeral port and
    the first attempt virtually always succeeds; explicit ports (the
    docker-compose topology) get the bounded retry loop.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    backoff = DEFAULT_BACKOFF
    for attempt in range(attempts):
        try:
            server = await asyncio.start_server(handler, host=host, port=port)
        except OSError as exc:
            if exc.errno not in _RETRYABLE_BIND or attempt == attempts - 1:
                raise
            await asyncio.sleep(backoff)
            backoff *= 2.0
            continue
        return server, server_port(server)
    raise AssertionError("unreachable: bounded retry loop exited")


async def connect(
    host: str,
    port: int,
    attempts: int = DEFAULT_ATTEMPTS,
    backoff: float = DEFAULT_BACKOFF,
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a TCP connection with a bounded retry budget.

    Retries connection-refused/reset (the listener may still be coming up,
    which is the one race ``port=0`` cannot close); every other error, and
    the final attempt's error, propagate to the caller.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    delay = backoff
    last: Exception = ConnectionError("connect() never attempted")
    for attempt in range(attempts):
        try:
            return await asyncio.open_connection(host=host, port=port)
        except (ConnectionRefusedError, ConnectionResetError, OSError) as exc:
            last = exc
            if attempt == attempts - 1:
                break
            await asyncio.sleep(delay)
            delay *= 2.0
    raise last


async def close_writer(writer: asyncio.StreamWriter) -> None:
    """Close one stream writer, absorbing teardown races.

    The peer may have closed first (connection reset) — that is a normal
    shutdown order in a swarm, not an error.  ``wait_closed()`` is always
    awaited so tests running with asyncio debug mode see no unclosed
    transports.
    """
    try:
        if not writer.is_closing():
            writer.close()
        await writer.wait_closed()
    except (ConnectionError, asyncio.TimeoutError, OSError):
        pass


def describe_endpoint(obj: Any) -> str:
    """Best-effort ``host:port`` of a writer/socket for log messages."""
    try:
        host, port = obj.get_extra_info("peername")[:2]
        return f"{host}:{port}"
    except Exception:
        return "<unknown>"
