"""Process supervision for the live swarm: restarts, budgets, chaos.

The single-process harness (:mod:`repro.live.harness`) proves protocol
fidelity; this module proves *crash tolerance*. A :class:`LiveSupervisor`
runs the same swarm as real operating-system processes — one
``repro live serve`` collector and ``peer_procs`` multi-peer
``repro live peer`` processes — and watches every child with a monitor
task:

- an **unexpected death** (crash or a chaos SIGKILL) is respawned under a
  :class:`RestartPolicy` budget with exponential backoff and jitter drawn
  from a named RNG substream, so supervision itself is reproducible;
- the **server child** is respawned with its listen port pinned and its
  checkpoint journal in place, so the successor restores the decoder pool
  (:mod:`repro.live.checkpoint`) and resumes the *same* collection
  window — zero accumulated rank lost;
- **peer children** respawn empty-buffered (a killed process loses its
  RAM, exactly like the paper's departing peers) and re-register into the
  running swarm via the reconnect/resume path.

The process-level fault plane executes :class:`repro.faults.plan.FaultPlan`
``process_faults`` as real signals: ``kill-server``/``kill-peers`` are
SIGKILL (no chance to flush anything — the checkpoint discipline has to
carry the day), ``stop-server``/``stop-peers`` are SIGSTOP windows ended
by SIGCONT. Fault onsets are simulated times, converted to wall deadlines
against the swarm epoch the server child reports on stdout (CLOCK_MONOTONIC
is system-wide on Linux, so child and supervisor clocks agree).

Children speak to the supervisor over stdout as JSON lines
(``endpoint`` / ``started`` / ``resumed`` / ``marked`` / ``report``);
stderr tails are retained for post-mortems.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import tempfile
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import repro
from repro.core.params import Parameters
from repro.live import wire
from repro.live.transport import PROCESS_STREAM, sample_process_cohort
from repro.faults.plan import (
    PROC_KILL_PEERS,
    PROC_KILL_SERVER,
    PROC_STOP_PEERS,
    PROC_STOP_SERVER,
)
from repro.sim.rng import SeedSequenceRegistry

#: Wall seconds of slack on top of the window for the whole campaign
#: (join storms, respawn backoff, reconnect deadlines, decode tail).
DEFAULT_GRACE = 90.0

#: Stderr lines retained per child for failure reports.
STDERR_TAIL = 40


@dataclass(frozen=True)
class RestartPolicy:
    """Respawn budget and backoff shape for one supervised child."""

    #: unexpected deaths tolerated per child before the campaign fails.
    max_restarts: int = 5
    #: first respawn delay (wall seconds), doubled per consecutive death.
    backoff_initial: float = 0.2
    #: backoff ceiling (wall seconds).
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.backoff_initial <= 0 or self.backoff_cap <= 0:
            raise ValueError("backoff parameters must be > 0")

    def delay(self, restarts: int, jitter: float) -> float:
        """Backoff before respawn number *restarts* (jitter in [0, 1))."""
        base = min(
            self.backoff_initial * (2.0 ** max(0, restarts - 1)),
            self.backoff_cap,
        )
        return base * (0.5 + 0.5 * jitter)


class _Child:
    """One supervised subprocess: identity, handle, restart accounting."""

    def __init__(self, name: str, argv: List[str]) -> None:
        self.name = name
        self.argv = argv
        self.proc: Optional["asyncio.subprocess.Process"] = None
        self.restarts = 0
        self.expected_exit = False
        self.failed = False
        self.stderr_tail: Deque[str] = deque(maxlen=STDERR_TAIL)


class LiveSupervisor:
    """Run one measured live window across supervised OS processes."""

    def __init__(
        self,
        params: Parameters,
        seed: int,
        warmup: float,
        duration: float,
        time_scale: float = 1.0,
        peer_procs: int = 4,
        policy: Optional[RestartPolicy] = None,
        host: str = "127.0.0.1",
        grace: float = DEFAULT_GRACE,
    ) -> None:
        if warmup < 0 or duration <= 0:
            raise ValueError(
                f"need warmup >= 0 and duration > 0, got {warmup}, {duration}"
            )
        if not 1 <= peer_procs <= params.n_peers:
            raise ValueError(
                f"peer_procs must be in [1, n_peers], got {peer_procs}"
            )
        self.params = params
        self.seed = seed
        self.warmup = warmup
        self.duration = duration
        self.time_scale = time_scale
        self.peer_procs = peer_procs
        self.policy = policy if policy is not None else RestartPolicy()
        self.host = host
        self.grace = grace
        seeds = SeedSequenceRegistry(seed)
        self._backoff_rng = seeds.python("live:supervisor:backoff")
        self._cohort_rng = seeds.python(PROCESS_STREAM)
        self._children: List[_Child] = []
        self._server: Optional[_Child] = None
        self._peer_children: List[_Child] = []
        self._port: Optional[int] = None
        # Created once the campaign runs inside a loop (see _run_in).
        self._epoch: Optional["asyncio.Future[float]"] = None
        self._report: Optional["asyncio.Future[Dict[str, Any]]"] = None
        self._shutting_down = False
        self._monitor_tasks: List["asyncio.Task[None]"] = []
        self._io_tasks: List["asyncio.Task[None]"] = []
        #: chaos bookkeeping surfaced in the final report extras.
        self.faults_executed: List[Dict[str, Any]] = []

    # -- child plumbing ------------------------------------------------------

    def _child_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
        return env

    async def _spawn(self, child: _Child) -> None:
        child.proc = await asyncio.create_subprocess_exec(
            *child.argv,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.PIPE,
            env=self._child_env(),
        )
        self._io_tasks.append(asyncio.create_task(
            self._read_stdout(child, child.proc),
            name=f"supervisor:{child.name}:stdout",
        ))
        self._io_tasks.append(asyncio.create_task(
            self._read_stderr(child, child.proc),
            name=f"supervisor:{child.name}:stderr",
        ))

    async def _read_stdout(
        self, child: _Child, proc: "asyncio.subprocess.Process"
    ) -> None:
        assert proc.stdout is not None
        while True:
            line = await proc.stdout.readline()
            if not line:
                return
            try:
                event = json.loads(line)
            except (ValueError, UnicodeDecodeError):
                continue
            if not isinstance(event, dict):
                continue
            self._on_event(child, event)

    async def _read_stderr(
        self, child: _Child, proc: "asyncio.subprocess.Process"
    ) -> None:
        assert proc.stderr is not None
        while True:
            line = await proc.stderr.readline()
            if not line:
                return
            child.stderr_tail.append(
                line.decode("utf-8", "replace").rstrip()
            )

    def _on_event(self, child: _Child, event: Dict[str, Any]) -> None:
        kind = event.get("type")
        if child is not self._server:
            return
        if self._port is None and "port" in event and kind is None:
            self._port = int(event["port"])
        elif kind in ("started", "resumed"):
            epoch = event.get("epoch")
            if (
                epoch is not None
                and self._epoch is not None
                and not self._epoch.done()
            ):
                self._epoch.set_result(float(epoch))
        elif kind == "report":
            if self._report is not None and not self._report.done():
                self._report.set_result(dict(event["report"]))

    async def _monitor(self, child: _Child) -> None:
        """Respawn *child* on unexpected death, within the restart budget."""
        while True:
            proc = child.proc
            assert proc is not None
            await proc.wait()
            if self._shutting_down or child.expected_exit:
                return
            if child.restarts >= self.policy.max_restarts:
                child.failed = True
                if self._report is not None and not self._report.done():
                    self._report.set_exception(RuntimeError(
                        f"child {child.name} exhausted its restart budget "
                        f"({self.policy.max_restarts}); last stderr:\n"
                        + "\n".join(child.stderr_tail)
                    ))
                return
            child.restarts += 1
            await asyncio.sleep(self.policy.delay(
                child.restarts, self._backoff_rng.random()
            ))
            if self._shutting_down:
                return
            await self._spawn(child)

    # -- command lines -------------------------------------------------------

    def _serve_argv(
        self, params_file: str, checkpoint: str, port: int
    ) -> List[str]:
        return [
            sys.executable, "-m", "repro", "live", "serve",
            "--seed", str(self.seed),
            "--host", self.host,
            "--port", str(port),
            "--time-scale", str(self.time_scale),
            "--warmup", str(self.warmup),
            "--duration", str(self.duration),
            "--expect-peers", str(self.params.n_peers),
            "--params-json", params_file,
            "--checkpoint", checkpoint,
            "--report",
        ]

    def _peer_argv(self, base_slot: int, count: int) -> List[str]:
        assert self._port is not None
        return [
            sys.executable, "-m", "repro", "live", "peer",
            "--server-host", self.host,
            "--server-port", str(self._port),
            "--slot", str(base_slot),
            "--count", str(count),
        ]

    def _peer_partition(self) -> List[Tuple[int, int]]:
        """Split n_peers slots into peer_procs contiguous (base, count)s."""
        n, k = self.params.n_peers, self.peer_procs
        shares = [n // k + (1 if i < n % k else 0) for i in range(k)]
        parts: List[Tuple[int, int]] = []
        base = 0
        for count in shares:
            parts.append((base, count))
            base += count
        return parts

    # -- the chaos plane -----------------------------------------------------

    async def _execute_faults(self) -> None:
        """Deliver each process fault as a real signal at its sim onset."""
        plan = self.params.faults
        if plan is None or not plan.process_faults:
            return
        assert self._epoch is not None
        epoch = await asyncio.shield(self._epoch)
        loop = asyncio.get_running_loop()
        for kind, at, duration, fraction in plan.process_faults:
            deadline = epoch + at / self.time_scale
            delay = deadline - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            await self._execute_one(kind, duration, fraction)
            self.faults_executed.append({
                "kind": kind, "at": at,
                "duration": duration, "fraction": fraction,
            })

    async def _execute_one(
        self, kind: str, duration: float, fraction: float
    ) -> None:
        if kind in (PROC_KILL_SERVER, PROC_STOP_SERVER):
            server = self._server
            assert server is not None
            proc = server.proc
            if proc is None or proc.returncode is not None:
                return
            if kind == PROC_KILL_SERVER:
                proc.kill()
            else:
                await self._stop_window(proc, duration)
            return
        cohort = sample_process_cohort(
            self._cohort_rng, fraction, self.peer_procs
        )
        for index in cohort:
            child = self._peer_children[index]
            proc = child.proc
            if proc is None or proc.returncode is not None:
                continue
            if kind == PROC_KILL_PEERS:
                proc.kill()
            elif kind == PROC_STOP_PEERS:
                await self._stop_window(proc, duration)

    async def _stop_window(
        self, proc: "asyncio.subprocess.Process", duration: float
    ) -> None:
        """SIGSTOP now, SIGCONT after *duration* sim units (detached)."""
        try:
            proc.send_signal(signal.SIGSTOP)
        except ProcessLookupError:
            return

        async def _resume() -> None:
            await asyncio.sleep(duration / self.time_scale)
            try:
                proc.send_signal(signal.SIGCONT)
            except ProcessLookupError:
                pass

        self._io_tasks.append(
            asyncio.create_task(_resume(), name="supervisor:sigcont")
        )

    # -- campaign ------------------------------------------------------------

    async def run(self) -> Dict[str, Any]:
        """Run the supervised window end to end; returns the live report."""
        with tempfile.TemporaryDirectory(prefix="repro-live-sup-") as tmp:
            return await self._run_in(Path(tmp))

    async def _run_in(self, tmp: Path) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        self._epoch = loop.create_future()
        self._report = loop.create_future()
        params_file = tmp / "params.json"
        params_file.write_text(json.dumps(wire.params_to_wire(self.params)))
        checkpoint = tmp / "server.ckpt"

        self._server = _Child(
            "server", self._serve_argv(str(params_file), str(checkpoint), 0)
        )
        self._children = [self._server]
        try:
            await self._spawn(self._server)
            await self._await_port()
            # Pin the port for every respawn: reconnecting peers re-dial
            # the address they already know.
            self._server.argv = self._serve_argv(
                str(params_file), str(checkpoint), self._port or 0
            )
            for base, count in self._peer_partition():
                child = _Child(
                    f"peers{base}", self._peer_argv(base, count)
                )
                self._peer_children.append(child)
                self._children.append(child)
                await self._spawn(child)
            self._monitor_tasks = [
                asyncio.create_task(
                    self._monitor(child),
                    name=f"supervisor:{child.name}:monitor",
                )
                for child in self._children
            ]
            chaos = asyncio.create_task(
                self._execute_faults(), name="supervisor:chaos"
            )
            self._io_tasks.append(chaos)
            budget = (
                (self.warmup + self.duration) / self.time_scale + self.grace
            )
            assert self._report is not None
            report = await asyncio.wait_for(
                asyncio.shield(self._report), timeout=budget
            )
        except asyncio.TimeoutError:
            raise RuntimeError(
                "supervised swarm missed its wall-clock budget; server "
                "stderr:\n"
                + "\n".join(
                    self._server.stderr_tail if self._server else []
                )
            ) from None
        finally:
            await self._teardown()
        report.setdefault("supervised", True)
        report["peer_proc_restarts"] = sum(
            child.restarts for child in self._peer_children
        )
        report["supervisor_server_restarts"] = self._server.restarts
        report["process_faults_executed"] = list(self.faults_executed)
        return report

    async def _await_port(self, timeout: float = 30.0) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while self._port is None:
            if loop.time() > deadline:
                raise RuntimeError(
                    "server child never reported its endpoint; stderr:\n"
                    + "\n".join(
                        self._server.stderr_tail if self._server else []
                    )
                )
            await asyncio.sleep(0.02)

    async def _teardown(self) -> None:
        self._shutting_down = True
        for child in self._children:
            child.expected_exit = True
            proc = child.proc
            if proc is not None and proc.returncode is None:
                # SIGCONT first: a SIGSTOPped child cannot act on SIGKILL
                # bookkeeping (wait() would hang on a stopped zombie).
                try:
                    proc.send_signal(signal.SIGCONT)
                except ProcessLookupError:
                    pass
                proc.kill()
        for child in self._children:
            if child.proc is not None:
                try:
                    await asyncio.wait_for(child.proc.wait(), timeout=10.0)
                except asyncio.TimeoutError:
                    pass
        for task in [*self._monitor_tasks, *self._io_tasks]:
            task.cancel()
        await asyncio.gather(
            *self._monitor_tasks, *self._io_tasks, return_exceptions=True
        )


async def run_supervised_swarm(
    params: Parameters,
    seed: int,
    warmup: float,
    duration: float,
    time_scale: float = 1.0,
    peer_procs: int = 4,
    policy: Optional[RestartPolicy] = None,
    host: str = "127.0.0.1",
    grace: float = DEFAULT_GRACE,
) -> Dict[str, Any]:
    """Run one supervised multi-process swarm; returns the live report."""
    supervisor = LiveSupervisor(
        params, seed, warmup, duration,
        time_scale=time_scale,
        peer_procs=peer_procs,
        policy=policy,
        host=host,
        grace=grace,
    )
    return await supervisor.run()


def supervised_cell(
    params: Parameters,
    seed: int,
    warmup: float,
    duration: float,
    time_scale: float = 1.0,
    peer_procs: int = 4,
    metrics: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Synchronous supervised cell shaped like ``live_cell``."""
    report = asyncio.run(run_supervised_swarm(
        params, seed, warmup, duration,
        time_scale=time_scale, peer_procs=peer_procs,
    ))
    if metrics is None:
        return report
    return {name: report.get(name) for name in metrics}


__all__ = [
    "DEFAULT_GRACE",
    "LiveSupervisor",
    "RestartPolicy",
    "run_supervised_swarm",
    "supervised_cell",
]
