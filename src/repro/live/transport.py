"""Framed TCP connections, connection caching, and the netem fault shim.

:class:`FramedConnection` wraps one asyncio stream pair with the frame
codec and a write lock, so concurrent tasks can share a connection without
interleaving frames; :meth:`FramedConnection.request` additionally holds
the lock across a send+receive pair for strict request/response exchanges
(OFFER -> OFFER-REPLY, PULL -> PULL-BLOCK).

:class:`ConnectionCache` is a small LRU of outbound connections.  A
thousand-peer single-box swarm cannot afford a persistent clique (O(N^2)
sockets); with a per-peer cache of a few entries the file-descriptor count
stays linear in N while hot gossip pairs still reuse their connection.

:class:`NetemShim` maps a :class:`FaultPlan` onto transport behavior — the
same plans drive simulation and live runs:

=====================  ====================================================
FaultPlan channel      live transport behavior
=====================  ====================================================
gossip_loss_rate       receiver drops the BLOCK frame after transfer
pull_loss_rate         collector discards the PULL-BLOCK reply in flight
pollution_fraction     polluter peers zero the GF(256) coefficient header
                       of every block they emit (detectably junk)
outage_*               collector pull clocks blackhole (pause + catch-up)
burst_rate/fraction    server RESETs a random peer cohort: buffers wiped,
                       connections torn down mid-stream
=====================  ====================================================

Polluter-slot sampling reuses the simulator's exact count formula and
sample call against the dedicated swarm-wide :data:`POLLUTER_STREAM`
substream, so every process of a live swarm — peers and servers alike —
derives the *same* polluter set from the root seed alone.  (The event
simulator draws its set from its own ``"faults"`` substream, so the sets
are equal in size and law but not slot-for-slot identical across
engines.)
"""

from __future__ import annotations

import asyncio
import random
from collections import OrderedDict
from typing import Any, Awaitable, Callable, FrozenSet, Mapping, Optional, Tuple

from repro.coding.block import CodedBlock
from repro.core.peer import SegmentHolding
from repro.faults.injector import corrupt_block
from repro.faults.plan import FaultPlan
from repro.live import ports
from repro.live.framing import Frame, FrameError, read_frame, write_frame


class FramedConnection:
    """One framed TCP stream with serialized writes and request pairing."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self.frames_sent = 0
        self.frames_received = 0

    @classmethod
    async def open(
        cls, host: str, port: int, attempts: int = ports.DEFAULT_ATTEMPTS
    ) -> "FramedConnection":
        """Connect with the shared bounded-retry helper."""
        reader, writer = await ports.connect(host, port, attempts=attempts)
        return cls(reader, writer)

    @property
    def is_closing(self) -> bool:
        """True once the underlying transport is going away."""
        return self._writer.is_closing()

    async def send(
        self, header: Mapping[str, Any], payload: bytes = b""
    ) -> None:
        """Send one frame (writes from concurrent tasks never interleave)."""
        async with self._lock:
            await write_frame(self._writer, header, payload)
            self.frames_sent += 1

    async def read(self) -> Optional[Frame]:
        """Read the next frame; ``None`` on clean EOF."""
        frame = await read_frame(self._reader)
        if frame is not None:
            self.frames_received += 1
        return frame

    async def request(
        self, header: Mapping[str, Any], payload: bytes = b""
    ) -> Frame:
        """Send one frame and read its reply atomically.

        The connection lock spans the exchange, so concurrent requesters
        cannot pair their request with someone else's response.  EOF in
        place of a reply raises :class:`ConnectionResetError` (the caller
        treats it like any dead connection).
        """
        async with self._lock:
            await write_frame(self._writer, header, payload)
            self.frames_sent += 1
            frame = await read_frame(self._reader)
            if frame is None:
                raise ConnectionResetError(
                    "connection closed while awaiting a reply"
                )
            self.frames_received += 1
            return frame

    async def close(self) -> None:
        """Close the transport (idempotent, absorbs teardown races)."""
        await ports.close_writer(self._writer)

    def __repr__(self) -> str:
        return f"FramedConnection({ports.describe_endpoint(self._writer)})"


#: Factory used by the cache to open a missing connection.
ConnectionFactory = Callable[[int], Awaitable[FramedConnection]]


class ConnectionCache:
    """LRU cache of outbound framed connections, keyed by peer slot."""

    def __init__(self, factory: ConnectionFactory, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"cache limit must be >= 1, got {limit}")
        self._factory = factory
        self._limit = limit
        self._connections: "OrderedDict[int, FramedConnection]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._connections)

    async def get(self, slot: int) -> FramedConnection:
        """Return a live cached connection to *slot*, opening if needed."""
        conn = self._connections.get(slot)
        if conn is not None:
            if not conn.is_closing:
                self._connections.move_to_end(slot)
                return conn
            del self._connections[slot]
            await conn.close()
        conn = await self._factory(slot)
        self._connections[slot] = conn
        if len(self._connections) > self._limit:
            _, evicted = self._connections.popitem(last=False)
            await evicted.close()
        return conn

    async def drop(self, slot: int) -> None:
        """Discard the cached connection to *slot* (it died mid-use)."""
        conn = self._connections.pop(slot, None)
        if conn is not None:
            await conn.close()

    async def close_all(self) -> None:
        """Tear down every cached connection."""
        connections = list(self._connections.values())
        self._connections.clear()
        for conn in connections:
            await conn.close()


#: Substream names shared by every process of a swarm, so each samples the
#: identical polluter set / burst cohort sequence from the same root seed.
POLLUTER_STREAM = "live:polluters"
BURST_STREAM = "live:bursts"
#: Substream the supervisor draws peer-process fault cohorts from, so the
#: processes SIGKILLed by a given plan are a pure function of the root seed.
PROCESS_STREAM = "live:process-faults"


def sample_process_cohort(
    rng: random.Random, fraction: float, n_procs: int
) -> Tuple[int, ...]:
    """Draw the peer-process cohort one process fault hits.

    Mirrors the :class:`repro.faults.injector.FaultInjector` burst-size
    formula (at least one process, at most all) so a live ``kill-peers``
    event and its simulated churn-burst twin remove the same population
    share.
    """
    if n_procs < 1:
        raise ValueError(f"n_procs must be >= 1, got {n_procs}")
    count = min(n_procs, max(1, round(fraction * n_procs)))
    return tuple(rng.sample(range(n_procs), count))


class NetemShim:
    """Transport-level realization of a :class:`FaultPlan` (see module doc).

    *shared_rng* must come from the swarm-wide :data:`POLLUTER_STREAM`
    substream (sampled exactly once, at construction); *event_rng* is the
    caller's own substream for per-event loss draws, so two endpoints never
    consume each other's randomness.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan],
        n_slots: int,
        shared_rng: random.Random,
        event_rng: random.Random,
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._n_slots = n_slots
        self._event_rng = event_rng
        self.polluters: FrozenSet[int] = self._sample_polluters(shared_rng)

    def _sample_polluters(self, rng: random.Random) -> FrozenSet[int]:
        # Mirrors FaultInjector._sample_polluters exactly (same count
        # formula, same sample call) so sim and live corrupt the same slots.
        fraction = self.plan.pollution_fraction
        if fraction <= 0.0:
            return frozenset()
        count = min(self._n_slots, max(1, round(fraction * self._n_slots)))
        return frozenset(rng.sample(range(self._n_slots), count))

    # -- per-event queries (zero-knob cases never touch the RNG) ------------

    def drop_gossip(self) -> bool:
        """One in-flight gossip BLOCK is lost on the lossy link."""
        p = self.plan.gossip_loss_rate
        return p > 0.0 and self._event_rng.random() < p

    def drop_pull(self) -> bool:
        """One PULL-BLOCK reply is lost on the lossy link."""
        p = self.plan.pull_loss_rate
        return p > 0.0 and self._event_rng.random() < p

    def is_polluter(self, slot: int) -> bool:
        """True when *slot* is a configured polluter."""
        return slot in self.polluters

    def pollutes(self, slot: int, holding: SegmentHolding) -> bool:
        """True when an emission from *holding* at *slot* is corrupted.

        Same contamination rule as the simulator: polluter slots corrupt
        everything they emit, and any re-encoding over a holding that
        already contains junk is junk.
        """
        if not self.polluters:
            return False
        return slot in self.polluters or holding.polluted_count > 0

    def maybe_pollute(
        self, slot: int, holding: SegmentHolding, block: CodedBlock
    ) -> bool:
        """Corrupt *block* in place when its emission is polluted."""
        if self.pollutes(slot, holding):
            corrupt_block(block)
            return True
        return False

    # -- correlated-churn bursts (server-driven) ----------------------------

    def burst_size(self) -> int:
        """Slots reset per burst event (at least one, at most all)."""
        return min(
            self._n_slots,
            max(1, round(self.plan.burst_fraction * self._n_slots)),
        )

    def sample_burst_slots(self, rng: random.Random) -> Tuple[int, ...]:
        """Draw one burst cohort (server-side, from the burst substream)."""
        return tuple(rng.sample(range(self._n_slots), self.burst_size()))


def detects_pollution(block: CodedBlock) -> bool:
    """Collector-side pollution detection: an all-zero coefficient header.

    This is the *real* detection the simulator's RLNC mode models — a
    zeroed header can never be innovative under GF(2^8) rank arithmetic —
    done cheaply before the decoder is touched.  The wire ``polluted`` tag
    is carried for accounting cross-checks but is deliberately not trusted.
    """
    return block.coefficients is not None and not block.coefficients.any()


def null_plan_is_neutral(plan: Optional[FaultPlan]) -> bool:
    """True when *plan* configures no fault channel at all."""
    return plan is None or plan.is_null
