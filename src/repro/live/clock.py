"""Wall-clock <-> simulated-time mapping for the live runtime.

The simulator's ``Parameters`` express every rate in *simulated time
units*; the live runtime executes them against the wall clock through one
linear map::

    sim_now = (wall_now - t0) * time_scale

``time_scale`` is simulated time units per wall-clock second: 2.0 runs the
protocol twice as fast as unit rates, 0.5 at half speed.  Every event
timestamp, TTL deadline, and metric window in the live runtime is kept in
sim units, so live measurements land directly on the simulator's axes
(throughput in blocks per sim unit, delays in sim units) with no
post-processing.

Scheduling discipline: loops draw the *next absolute* event time and sleep
until it (:meth:`LiveClock.sleep_until`), rather than sleeping the drawn
gap after finishing the previous event's work.  Per-event service time
(socket round-trips) therefore does not deflate the realized event rate —
the live Poisson clocks stay honest to their configured rates as long as
service stays ahead of the schedule on average.
"""

from __future__ import annotations

import asyncio
import random
from typing import Optional

from repro.sim.rng import exponential


class LiveClock:
    """Monotonic wall clock mapped linearly onto simulated time."""

    __slots__ = ("time_scale", "_t0")

    def __init__(self, time_scale: float) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be > 0, got {time_scale}")
        self.time_scale = time_scale
        self._t0: Optional[float] = None

    @property
    def started(self) -> bool:
        """True once the epoch is set."""
        return self._t0 is not None

    @property
    def epoch(self) -> Optional[float]:
        """The wall-clock epoch (``loop.time()`` units), or ``None``.

        ``loop.time()`` is CLOCK_MONOTONIC, which is system-wide on Linux,
        so an epoch checkpointed by a killed server process remains valid
        in its respawned successor on the same box — the restarted clock
        resumes the *same* simulated timeline.
        """
        return self._t0

    def start(self, wall_t0: Optional[float] = None) -> None:
        """Fix the sim-time epoch (default: now)."""
        if self._t0 is not None:
            raise RuntimeError("clock already started")
        loop = asyncio.get_running_loop()
        self._t0 = loop.time() if wall_t0 is None else wall_t0

    def now(self) -> float:
        """Current simulated time (0.0 before :meth:`start`).

        The epoch may be set slightly in the future (the START broadcast
        gives every peer the same epoch plus a wall-clock lead so they all
        begin together); during that lead-in the clock reads 0.0 rather
        than negative, keeping every consumer's time axis monotone
        non-negative.
        """
        if self._t0 is None:
            return 0.0
        loop = asyncio.get_running_loop()
        return max(0.0, (loop.time() - self._t0) * self.time_scale)

    def wall_interval(self, sim_interval: float) -> float:
        """Wall seconds spanning *sim_interval* simulated units."""
        return sim_interval / self.time_scale

    async def sleep_sim(self, sim_interval: float) -> None:
        """Sleep for *sim_interval* simulated units of wall time."""
        if sim_interval > 0:
            await asyncio.sleep(self.wall_interval(sim_interval))

    async def sleep_until(self, sim_deadline: float) -> None:
        """Sleep until simulated time *sim_deadline* (no-op if past)."""
        remaining = sim_deadline - self.now()
        if remaining > 0:
            await asyncio.sleep(self.wall_interval(remaining))


class PoissonSchedule:
    """Absolute-time Poisson event schedule on a :class:`LiveClock`.

    Draws the next event time ahead of the current one, so the realized
    long-run rate equals *rate* regardless of per-event service time (see
    the module docstring).  A schedule that falls behind (service slower
    than the gap) fires immediately until it catches up, mirroring how a
    backlogged event queue drains.
    """

    __slots__ = ("_clock", "_rng", "_rate", "_next_at")

    def __init__(
        self, clock: LiveClock, rng: random.Random, rate: float
    ) -> None:
        if rate <= 0:
            raise ValueError(f"event rate must be > 0, got {rate}")
        self._clock = clock
        self._rng = rng
        self._rate = rate
        self._next_at: Optional[float] = None

    async def wait(self) -> float:
        """Sleep until the next event; returns its scheduled sim time."""
        if self._next_at is None:
            self._next_at = self._clock.now() + exponential(
                self._rng, self._rate
            )
        at = self._next_at
        await self._clock.sleep_until(at)
        self._next_at = at + exponential(self._rng, self._rate)
        return at

    def defer(self, sim_interval: float) -> None:
        """Push the pending event back by *sim_interval* (outage resume)."""
        if self._next_at is not None:
            self._next_at += sim_interval
