"""Single-box swarm orchestration: run a live session end to end.

:func:`run_swarm` stands up one :class:`LiveLoggingServer` and ``N``
in-process :class:`LivePeer` tasks on loopback TCP, runs the protocol for
``warmup + duration`` simulated units, and returns a MetricsReport-shaped
dict (:func:`repro.live.livemetrics.aggregate_report`).  The same
machinery scales from the 8-peer test swarms to the 1000-peer E-LIVE
experiment: peers are cheap tasks, sockets are the only real resource
(about 3 file descriptors per peer with the default gossip cache).

:func:`live_cell` is the synchronous entry point shaped exactly like
:func:`repro.experiments.base.simulate_cell`, so experiment task grids can
mix simulated and live cells freely.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.core.params import MODE_RLNC, Parameters
from repro.live.clock import LiveClock
from repro.live.livemetrics import aggregate_report
from repro.live.peer import LivePeer
from repro.live.server import LiveLoggingServer

#: Peers started concurrently per batch (bounds the connect storm).
START_BATCH = 64

#: Wall-clock ceiling for all peers to register.
JOIN_TIMEOUT = 120.0

#: Wall-clock lead time between broadcasting START and the clock epoch.
START_DELAY = 0.5


def validate_live_params(params: Parameters, supervised: bool = False) -> None:
    """Reject configurations the live runtime cannot execute faithfully.

    *supervised* marks a multi-process run under
    :class:`repro.live.supervisor.LiveSupervisor`: only there can
    ``process_faults`` be delivered (as real signals); a single-process
    swarm has no processes to kill, so such plans are rejected.
    """
    if params.mode != MODE_RLNC or params.payload_bytes <= 0:
        raise ValueError(
            "live swarms move real bytes: set mode='rlnc' and "
            "payload_bytes > 0"
        )
    if params.has_adversary:
        raise ValueError("live swarms do not run adversary plans")
    if (
        not supervised
        and params.faults is not None
        and params.faults.process_faults
    ):
        raise ValueError(
            "process_faults need real processes to signal: run with "
            "--supervised (repro live swarm) or run_supervised_swarm()"
        )
    if params.pull_policy != "random":
        raise ValueError(
            f"live swarms implement the paper's random pull policy only, "
            f"got {params.pull_policy!r}"
        )
    if params.gossip_latency != 0.0:
        raise ValueError(
            "gossip_latency is a simulator knob; live transfers take real "
            "network time"
        )


async def run_swarm(
    params: Parameters,
    seed: int,
    warmup: float,
    duration: float,
    time_scale: float = 1.0,
    host: str = "127.0.0.1",
) -> Dict[str, Any]:
    """Run one complete live session; returns the aggregated report.

    *warmup* and *duration* are in simulated time units, like the
    simulator's cells: the swarm runs for ``warmup`` units to reach
    steady state, MARK resets every counter, and the report covers the
    following ``duration`` units.
    """
    validate_live_params(params)
    if warmup < 0 or duration <= 0:
        raise ValueError(
            f"need warmup >= 0 and duration > 0, got {warmup}, {duration}"
        )
    clock = LiveClock(time_scale)
    server = LiveLoggingServer(
        params, seed, clock=clock, host=host
    )
    await server.start()
    peers: List[LivePeer] = []
    wall_start = time.monotonic()
    try:
        for slot in range(params.n_peers):
            peers.append(
                LivePeer(
                    slot, params, seed, host, server.port,
                    clock=clock, listen_host=host,
                )
            )
        for base in range(0, len(peers), START_BATCH):
            batch = peers[base : base + START_BATCH]
            await asyncio.gather(*(peer.start() for peer in batch))
        await server.wait_for_peers(params.n_peers, timeout=JOIN_TIMEOUT)
        await server.begin(START_DELAY)
        await asyncio.sleep(START_DELAY + clock.wall_interval(warmup))
        await server.mark()
        mark_at = clock.now()
        await asyncio.sleep(clock.wall_interval(duration))
        await server.stop_protocol()
        stop_at = clock.now()
        window = stop_at - mark_at
        peer_summaries = [
            await server.request_metrics(slot)
            for slot in range(params.n_peers)
        ]
        frames = sum(
            record.conn.frames_received for record in server.peers.values()
        )
        report = aggregate_report(
            params,
            window,
            server.stats.summary(stop_at, window),
            peer_summaries,
            extras={
                "time_scale": time_scale,
                "wall_seconds": time.monotonic() - wall_start,
                "control_frames": frames,
                "engine": "live",
            },
        )
        return report
    finally:
        await asyncio.gather(
            *(peer.close() for peer in peers), return_exceptions=True
        )
        await server.close()


def live_cell(
    params: Parameters,
    seed: int,
    warmup: float,
    duration: float,
    time_scale: float = 1.0,
    metrics: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Synchronous live cell shaped like ``simulate_cell``.

    With *metrics* the report is filtered down to those keys (missing keys
    map to ``None``), which is exactly the contract experiment task grids
    rely on.
    """
    report = asyncio.run(
        run_swarm(params, seed, warmup, duration, time_scale)
    )
    if metrics is None:
        return report
    return {name: report.get(name) for name in metrics}
