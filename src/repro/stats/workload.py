"""Statistics-generation workloads: how fast peers produce log data.

Sec. 2 models block generation at each peer as a Poisson process with rate
``lambda`` ("to accommodate the fluctuating nature of the upload demand");
Sec. 1 motivates the design with *flash crowds* — sharp surges of arrivals
and reporting that overwhelm provisioned-for-average servers.  This module
defines the rate profiles:

- :class:`ConstantWorkload` — homogeneous Poisson (the analysis setting),
- :class:`FlashCrowdWorkload` — baseline rate with a multiplicative burst
  over a time window (the DDoS-like peak of Sec. 1),
- :class:`DiurnalWorkload` — sinusoidal day/night swing,
- :class:`PiecewiseWorkload` — arbitrary step profile, and
- :class:`ShutoffWorkload` — demand that ends at a cutoff time (the
  Theorem 4 "streams of upload requests end" scenario, where the buffered
  backlog drains to the servers in a delayed fashion).

All profiles expose ``rate(t)`` and ``max_rate`` so injection can be driven
by a thinned Poisson process, and ``mean_rate(t0, t1)`` for provisioning
arithmetic (peak-vs-average, the paper's central trade-off).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.util.validation import require_nonnegative, require_positive


class Workload:
    """Interface for a per-peer statistics-generation rate profile."""

    @property
    def max_rate(self) -> float:
        """Upper bound of ``rate(t)`` over all t (thinning envelope)."""
        raise NotImplementedError

    def rate(self, t: float) -> float:
        """Instantaneous generation rate at time *t* (blocks/unit time)."""
        raise NotImplementedError

    def mean_rate(self, t0: float, t1: float, resolution: int = 2048) -> float:
        """Average rate over [t0, t1], numerically unless overridden."""
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got [{t0}, {t1}]")
        step = (t1 - t0) / resolution
        total = 0.0
        for index in range(resolution):
            total += self.rate(t0 + (index + 0.5) * step)
        return total / resolution

    def peak_to_average(self, t0: float, t1: float) -> float:
        """Peak-over-mean ratio on [t0, t1] — the server over-provisioning
        factor a direct design must pay and the indirect design avoids."""
        mean = self.mean_rate(t0, t1)
        if mean == 0:
            return math.inf
        return self.max_rate / mean


class ConstantWorkload(Workload):
    """Homogeneous Poisson generation at fixed rate ``lam``."""

    def __init__(self, lam: float) -> None:
        self._lam = require_nonnegative("lam", lam)

    @property
    def max_rate(self) -> float:
        return self._lam

    def rate(self, t: float) -> float:
        return self._lam

    def mean_rate(self, t0: float, t1: float, resolution: int = 2048) -> float:
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got [{t0}, {t1}]")
        return self._lam


class FlashCrowdWorkload(Workload):
    """Baseline rate with a burst of ``multiplier * base`` on [start, end).

    Models the Sec. 1 scenario: "the number of peers in the session increases
    dramatically in a short period of time", turning periodic reporting into
    a de-facto DDoS against the logging servers.
    """

    def __init__(
        self,
        base_rate: float,
        burst_start: float,
        burst_end: float,
        multiplier: float,
    ) -> None:
        self.base_rate = require_positive("base_rate", base_rate)
        if burst_end <= burst_start:
            raise ValueError(
                f"burst window must be non-empty, got [{burst_start}, {burst_end})"
            )
        self.burst_start = burst_start
        self.burst_end = burst_end
        if multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        self.multiplier = multiplier

    @property
    def max_rate(self) -> float:
        return self.base_rate * self.multiplier

    def rate(self, t: float) -> float:
        if self.burst_start <= t < self.burst_end:
            return self.base_rate * self.multiplier
        return self.base_rate

    def mean_rate(self, t0: float, t1: float, resolution: int = 2048) -> float:
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got [{t0}, {t1}]")
        burst_overlap = max(
            0.0, min(t1, self.burst_end) - max(t0, self.burst_start)
        )
        plain = (t1 - t0) - burst_overlap
        return (
            self.base_rate * plain + self.base_rate * self.multiplier * burst_overlap
        ) / (t1 - t0)


class DiurnalWorkload(Workload):
    """Sinusoidal rate: ``base * (1 + amplitude * sin(2 pi t / period))``."""

    def __init__(self, base_rate: float, amplitude: float, period: float) -> None:
        self.base_rate = require_positive("base_rate", base_rate)
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(f"amplitude must lie in [0, 1], got {amplitude}")
        self.amplitude = amplitude
        self.period = require_positive("period", period)

    @property
    def max_rate(self) -> float:
        return self.base_rate * (1.0 + self.amplitude)

    def rate(self, t: float) -> float:
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
        )


class PiecewiseWorkload(Workload):
    """Step profile from ``(start_time, rate)`` breakpoints.

    The rate before the first breakpoint is the first breakpoint's rate.
    Breakpoints must be sorted by time.
    """

    def __init__(self, steps: Sequence[Tuple[float, float]]) -> None:
        if not steps:
            raise ValueError("PiecewiseWorkload needs at least one step")
        times = [t for t, _ in steps]
        if times != sorted(times):
            raise ValueError("breakpoints must be sorted by time")
        for _, rate in steps:
            require_nonnegative("rate", rate)
        self._steps: List[Tuple[float, float]] = [
            (float(t), float(r)) for t, r in steps
        ]

    @property
    def max_rate(self) -> float:
        return max(rate for _, rate in self._steps)

    def rate(self, t: float) -> float:
        current = self._steps[0][1]
        for start, rate in self._steps:
            if t >= start:
                current = rate
            else:
                break
        return current


class ShutoffWorkload(Workload):
    """Constant rate that drops to zero at *cutoff* (Theorem 4 scenario)."""

    def __init__(self, lam: float, cutoff: float) -> None:
        self._lam = require_positive("lam", lam)
        self.cutoff = require_nonnegative("cutoff", cutoff)

    @property
    def max_rate(self) -> float:
        return self._lam

    def rate(self, t: float) -> float:
        return self._lam if t < self.cutoff else 0.0
