"""Statistics-generation workloads: how fast peers produce log data.

Sec. 2 models block generation at each peer as a Poisson process with rate
``lambda`` ("to accommodate the fluctuating nature of the upload demand");
Sec. 1 motivates the design with *flash crowds* — sharp surges of arrivals
and reporting that overwhelm provisioned-for-average servers.  This module
defines the rate profiles:

- :class:`ConstantWorkload` — homogeneous Poisson (the analysis setting),
- :class:`FlashCrowdWorkload` — baseline rate with a multiplicative burst
  over a time window (the DDoS-like peak of Sec. 1),
- :class:`DiurnalWorkload` — sinusoidal day/night swing,
- :class:`TraceWorkload` — eDonkey-calibrated synthetic trace (diurnal base
  modulated by heavy-tailed session arrivals; the E-ADVERSARY setting),
- :class:`PiecewiseWorkload` — arbitrary step profile, and
- :class:`ShutoffWorkload` — demand that ends at a cutoff time (the
  Theorem 4 "streams of upload requests end" scenario, where the buffered
  backlog drains to the servers in a delayed fashion).

All profiles expose ``rate(t)`` and ``max_rate`` so injection can be driven
by a thinned Poisson process, and ``mean_rate(t0, t1)`` for provisioning
arithmetic (peak-vs-average, the paper's central trade-off).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.sim.rng import SeedSequenceRegistry
from repro.util.validation import require_nonnegative, require_positive


class Workload:
    """Interface for a per-peer statistics-generation rate profile."""

    @property
    def max_rate(self) -> float:
        """Upper bound of ``rate(t)`` over all t (thinning envelope)."""
        raise NotImplementedError

    def rate(self, t: float) -> float:
        """Instantaneous generation rate at time *t* (blocks/unit time)."""
        raise NotImplementedError

    def mean_rate(self, t0: float, t1: float, resolution: int = 2048) -> float:
        """Average rate over [t0, t1], numerically unless overridden."""
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got [{t0}, {t1}]")
        step = (t1 - t0) / resolution
        total = 0.0
        for index in range(resolution):
            total += self.rate(t0 + (index + 0.5) * step)
        return total / resolution

    def peak_to_average(self, t0: float, t1: float) -> float:
        """Peak-over-mean ratio on [t0, t1] — the server over-provisioning
        factor a direct design must pay and the indirect design avoids."""
        mean = self.mean_rate(t0, t1)
        if mean == 0:
            return math.inf
        return self.max_rate / mean


class ConstantWorkload(Workload):
    """Homogeneous Poisson generation at fixed rate ``lam``."""

    def __init__(self, lam: float) -> None:
        self._lam = require_nonnegative("lam", lam)

    @property
    def max_rate(self) -> float:
        return self._lam

    def rate(self, t: float) -> float:
        return self._lam

    def mean_rate(self, t0: float, t1: float, resolution: int = 2048) -> float:
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got [{t0}, {t1}]")
        return self._lam


class FlashCrowdWorkload(Workload):
    """Baseline rate with a burst of ``multiplier * base`` on [start, end).

    Models the Sec. 1 scenario: "the number of peers in the session increases
    dramatically in a short period of time", turning periodic reporting into
    a de-facto DDoS against the logging servers.
    """

    def __init__(
        self,
        base_rate: float,
        burst_start: float,
        burst_end: float,
        multiplier: float,
    ) -> None:
        self.base_rate = require_positive("base_rate", base_rate)
        if burst_end <= burst_start:
            raise ValueError(
                f"burst window must be non-empty, got [{burst_start}, {burst_end})"
            )
        self.burst_start = burst_start
        self.burst_end = burst_end
        if multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        self.multiplier = multiplier

    @property
    def max_rate(self) -> float:
        return self.base_rate * self.multiplier

    def rate(self, t: float) -> float:
        if self.burst_start <= t < self.burst_end:
            return self.base_rate * self.multiplier
        return self.base_rate

    def mean_rate(self, t0: float, t1: float, resolution: int = 2048) -> float:
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got [{t0}, {t1}]")
        burst_overlap = max(
            0.0, min(t1, self.burst_end) - max(t0, self.burst_start)
        )
        plain = (t1 - t0) - burst_overlap
        return (
            self.base_rate * plain + self.base_rate * self.multiplier * burst_overlap
        ) / (t1 - t0)


class DiurnalWorkload(Workload):
    """Sinusoidal rate: ``base * (1 + amplitude * sin(2 pi t / period))``."""

    def __init__(self, base_rate: float, amplitude: float, period: float) -> None:
        self.base_rate = require_positive("base_rate", base_rate)
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(f"amplitude must lie in [0, 1], got {amplitude}")
        self.amplitude = amplitude
        self.period = require_positive("period", period)

    @property
    def max_rate(self) -> float:
        return self.base_rate * (1.0 + self.amplitude)

    def rate(self, t: float) -> float:
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
        )

    def mean_rate(self, t0: float, t1: float, resolution: int = 2048) -> float:
        """Closed form: the sine integrates exactly, no quadrature needed.

        ``∫ base·(1 + a·sin(ωt)) dt = base·[(t1-t0) + a·(cos(ωt0) - cos(ωt1))/ω]``
        with ``ω = 2π/period``.
        """
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got [{t0}, {t1}]")
        omega = 2.0 * math.pi / self.period
        integral = (t1 - t0) + self.amplitude * (
            math.cos(omega * t0) - math.cos(omega * t1)
        ) / omega
        return self.base_rate * integral / (t1 - t0)


class TraceWorkload(Workload):
    """eDonkey-calibrated synthetic trace: diurnal base × heavy-tailed sessions.

    The eDonkey measurement studies (PAPERS.md) show two structures the
    plain profiles miss: a strong day/night swing in activity, and session
    lengths with a heavy (Pareto-like) tail — a few very long sessions
    carry a disproportionate share of the load.  This workload synthesizes
    both: session arrivals are Poisson at ``session_rate``, each session
    draws a Pareto duration with mean ``mean_session`` and tail exponent
    ``session_shape``, and while active it boosts the diurnal base rate by
    ``boost_per_session``.  The total boost is capped at ``peak_boost`` so
    the thinning envelope stays finite and tight.

    The realized profile is *frozen at construction* from its own seeded
    RNG (via the ``"trace-workload"`` substream), so the same
    ``(seed, horizon)`` always yields the identical rate function — the
    byte-compare contract the experiment runner depends on — and the
    simulation's substreams are untouched.
    """

    def __init__(
        self,
        base_rate: float,
        amplitude: float = 0.6,
        period: float = 24.0,
        session_rate: float = 0.25,
        mean_session: float = 4.0,
        session_shape: float = 1.5,
        boost_per_session: float = 0.5,
        peak_boost: float = 2.0,
        horizon: float = 96.0,
        seed: int = 0,
    ) -> None:
        self._diurnal = DiurnalWorkload(base_rate, amplitude, period)
        require_nonnegative("session_rate", session_rate)
        require_positive("mean_session", mean_session)
        if session_shape <= 1.0:
            raise ValueError(
                f"session_shape must be > 1 (finite mean), got {session_shape}"
            )
        require_nonnegative("boost_per_session", boost_per_session)
        require_nonnegative("peak_boost", peak_boost)
        require_positive("horizon", horizon)
        self.session_rate = session_rate
        self.mean_session = mean_session
        self.session_shape = session_shape
        self.boost_per_session = boost_per_session
        self.peak_boost = peak_boost
        self.horizon = horizon
        # Frozen realization: Poisson session starts on [0, horizon),
        # Pareto durations scaled so the mean is exactly mean_session.
        rng = SeedSequenceRegistry(seed).python("trace-workload")
        scale = mean_session * (session_shape - 1.0) / session_shape
        sessions: List[Tuple[float, float]] = []
        t = 0.0
        while session_rate > 0.0:
            t += rng.expovariate(session_rate)
            if t >= horizon:
                break
            sessions.append((t, t + scale * rng.paretovariate(session_shape)))
        self._sessions = sessions

    @property
    def max_rate(self) -> float:
        return self._diurnal.max_rate * (1.0 + self.peak_boost)

    def _boost(self, t: float) -> float:
        total = sum(
            self.boost_per_session
            for start, end in self._sessions
            if start <= t < end
        )
        return min(total, self.peak_boost)

    def rate(self, t: float) -> float:
        return self._diurnal.rate(t) * (1.0 + self._boost(t))

    def active_sessions(self, t: float) -> int:
        """Sessions overlapping time *t* (diagnostics/tests)."""
        return sum(1 for start, end in self._sessions if start <= t < end)


class PiecewiseWorkload(Workload):
    """Step profile from ``(start_time, rate)`` breakpoints.

    The rate before the first breakpoint is the first breakpoint's rate.
    Breakpoints must be sorted by time.
    """

    def __init__(self, steps: Sequence[Tuple[float, float]]) -> None:
        if not steps:
            raise ValueError("PiecewiseWorkload needs at least one step")
        times = [t for t, _ in steps]
        if times != sorted(times):
            raise ValueError("breakpoints must be sorted by time")
        for _, rate in steps:
            require_nonnegative("rate", rate)
        self._steps: List[Tuple[float, float]] = [
            (float(t), float(r)) for t, r in steps
        ]

    @property
    def max_rate(self) -> float:
        return max(rate for _, rate in self._steps)

    def rate(self, t: float) -> float:
        current = self._steps[0][1]
        for start, rate in self._steps:
            if t >= start:
                current = rate
            else:
                break
        return current


class ShutoffWorkload(Workload):
    """Constant rate that drops to zero at *cutoff* (Theorem 4 scenario)."""

    def __init__(self, lam: float, cutoff: float) -> None:
        self._lam = require_positive("lam", lam)
        self.cutoff = require_nonnegative("cutoff", cutoff)

    @property
    def max_rate(self) -> float:
        return self._lam

    def rate(self, t: float) -> float:
        return self._lam if t < self.cutoff else 0.0
