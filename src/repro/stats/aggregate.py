"""Operator-side analytics over recovered telemetry records.

Collecting the logs is half the story the paper tells; the other half is
what "network administrators and analysts" (Sec. 1) do with them: rank
peers by streaming health, find outage cohorts, and compare the telemetry
of departed peers against the survivors.  This module provides those
analytics over :class:`repro.stats.records.StatsRecord` streams, so the
examples (and downstream users) can close the loop from coded blocks back
to diagnosis.

Everything here is pure computation over record lists — no simulator
coupling — and deliberately dependency-light (plain Python, no pandas).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.stats.records import StatsRecord
from repro.util.summary import percentile as _percentile


@dataclass(frozen=True)
class FieldSummary:
    """Distributional summary of one numeric telemetry field."""

    count: int
    mean: float
    p50: float
    p95: float
    minimum: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "FieldSummary":
        data = sorted(float(v) for v in values)
        if not data:
            raise ValueError("cannot summarize an empty field")
        return cls(
            count=len(data),
            mean=sum(data) / len(data),
            p50=_percentile(data, 50.0),
            p95=_percentile(data, 95.0),
            minimum=data[0],
            maximum=data[-1],
        )


@dataclass(frozen=True)
class PeerHealth:
    """Health profile of one peer derived from its recovered records."""

    peer_id: int
    records: int
    buffer_level: FieldSummary
    loss_fraction: FieldSummary
    download_rate: FieldSummary
    rebuffering_fraction: float
    first_seen: float
    last_seen: float

    @property
    def health_score(self) -> float:
        """0 (dire) .. 1 (healthy): buffer-, loss- and rebuffer-weighted.

        A coarse composite for ranking; each component is clamped to [0, 1].
        """
        buffer_term = min(self.buffer_level.p50 / 10.0, 1.0)
        loss_term = 1.0 - min(self.loss_fraction.mean / 0.2, 1.0)
        rebuffer_term = 1.0 - self.rebuffering_fraction
        return (buffer_term + loss_term + rebuffer_term) / 3.0

    @property
    def is_degraded(self) -> bool:
        """Operational rule of thumb for 'this peer was suffering'."""
        return self.health_score < 0.5


def summarize_peer(peer_id: int, records: Sequence[StatsRecord]) -> PeerHealth:
    """Build one peer's health profile; raises on empty input."""
    if not records:
        raise ValueError(f"no records for peer {peer_id}")
    for record in records:
        if record.peer_id != peer_id:
            raise ValueError(
                f"record of peer {record.peer_id} passed to summary of "
                f"peer {peer_id}"
            )
    return PeerHealth(
        peer_id=peer_id,
        records=len(records),
        buffer_level=FieldSummary.from_values([r.buffer_level for r in records]),
        loss_fraction=FieldSummary.from_values([r.loss_fraction for r in records]),
        download_rate=FieldSummary.from_values([r.download_rate for r in records]),
        rebuffering_fraction=sum(1 for r in records if r.rebuffering)
        / len(records),
        first_seen=min(r.timestamp for r in records),
        last_seen=max(r.timestamp for r in records),
    )


def group_by_peer(records: Iterable[StatsRecord]) -> Dict[int, List[StatsRecord]]:
    """Index a recovered record stream by peer id."""
    grouped: Dict[int, List[StatsRecord]] = {}
    for record in records:
        grouped.setdefault(record.peer_id, []).append(record)
    return grouped


def fleet_health(records: Iterable[StatsRecord]) -> List[PeerHealth]:
    """Per-peer health profiles for an entire recovered stream, sorted from
    least to most healthy (triage order)."""
    profiles = [
        summarize_peer(peer_id, peer_records)
        for peer_id, peer_records in group_by_peer(records).items()
    ]
    profiles.sort(key=lambda p: p.health_score)
    return profiles


@dataclass(frozen=True)
class OutageReport:
    """Cohort analysis: degraded versus healthy peers in one session."""

    degraded: List[PeerHealth]
    healthy: List[PeerHealth]

    @property
    def degraded_fraction(self) -> float:
        total = len(self.degraded) + len(self.healthy)
        return len(self.degraded) / total if total else 0.0

    def loss_gap(self) -> Optional[float]:
        """Mean loss of the degraded cohort minus the healthy cohort."""
        if not self.degraded or not self.healthy:
            return None
        degraded_loss = sum(p.loss_fraction.mean for p in self.degraded) / len(
            self.degraded
        )
        healthy_loss = sum(p.loss_fraction.mean for p in self.healthy) / len(
            self.healthy
        )
        return degraded_loss - healthy_loss


def detect_outage(records: Iterable[StatsRecord]) -> OutageReport:
    """Split the fleet into degraded/healthy cohorts by health score."""
    profiles = fleet_health(records)
    return OutageReport(
        degraded=[p for p in profiles if p.is_degraded],
        healthy=[p for p in profiles if not p.is_degraded],
    )


def compare_cohorts(
    cohort_a: Iterable[StatsRecord],
    cohort_b: Iterable[StatsRecord],
) -> Dict[str, Tuple[float, float]]:
    """Field-by-field mean comparison of two record cohorts.

    Returns {field: (mean_a, mean_b)} for the numeric health fields — e.g.
    departed peers' records versus survivors', the comparison the paper's
    postmortem motivation calls for.
    """
    a = list(cohort_a)
    b = list(cohort_b)
    if not a or not b:
        raise ValueError("both cohorts must be non-empty")

    def means(records: List[StatsRecord]) -> Dict[str, float]:
        n = len(records)
        return {
            "buffer_level": sum(r.buffer_level for r in records) / n,
            "loss_fraction": sum(r.loss_fraction for r in records) / n,
            "download_rate": sum(r.download_rate for r in records) / n,
            "playback_delay": sum(r.playback_delay for r in records) / n,
            "rebuffering": sum(1.0 for r in records if r.rebuffering) / n,
        }

    means_a, means_b = means(a), means(b)
    return {field: (means_a[field], means_b[field]) for field in means_a}
