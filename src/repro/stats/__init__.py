"""Statistics payloads, generation workloads, and operator analytics."""

from repro.stats.aggregate import (
    FieldSummary,
    OutageReport,
    PeerHealth,
    compare_cohorts,
    detect_outage,
    fleet_health,
    group_by_peer,
    summarize_peer,
)
from repro.stats.records import (
    FLAG_REBUFFERING,
    RECORD_SIZE,
    RecordCodec,
    StatsRecord,
    synthesize_records,
)
from repro.stats.workload import (
    ConstantWorkload,
    DiurnalWorkload,
    FlashCrowdWorkload,
    PiecewiseWorkload,
    ShutoffWorkload,
    TraceWorkload,
    Workload,
)

__all__ = [
    "FieldSummary",
    "OutageReport",
    "PeerHealth",
    "compare_cohorts",
    "detect_outage",
    "fleet_health",
    "group_by_peer",
    "summarize_peer",
    "FLAG_REBUFFERING",
    "RECORD_SIZE",
    "RecordCodec",
    "StatsRecord",
    "synthesize_records",
    "ConstantWorkload",
    "DiurnalWorkload",
    "FlashCrowdWorkload",
    "PiecewiseWorkload",
    "ShutoffWorkload",
    "TraceWorkload",
    "Workload",
]
