"""Vital-statistics records: the data the collection system actually carries.

The paper motivates the whole mechanism with commercial P2P live-streaming
telemetry ("measurements of important performance metrics in the P2P
application at each peer", Sec. 1, citing the UUSee measurement studies).
This module defines a realistic such record — per-peer streaming health
metrics — together with a fixed-size binary codec so records pack into the
constant-size blocks that network coding requires.

Layout (big-endian, 40 bytes per record):

====== ======== =======================================
offset format   field
====== ======== =======================================
0      ``>d``   timestamp (seconds)
8      ``>I``   peer id
12     ``>I``   session id
16     ``>f``   buffer level (seconds of media)
20     ``>f``   download rate (kbps)
24     ``>f``   upload rate (kbps)
28     ``>f``   packet loss fraction
32     ``>f``   playback delay (seconds)
36     ``>H``   connected-neighbor count
38     ``>H``   flags (bit 0: rebuffering)
====== ======== =======================================

Records are padded into blocks of ``block_size`` bytes with a 4-byte record
count header, so a decoded block always yields exactly the records that were
packed into it.
"""

from __future__ import annotations

import math
import random
import struct
from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

RECORD_STRUCT = struct.Struct(">dIIfffffHH")
RECORD_SIZE = RECORD_STRUCT.size  # 40 bytes
BLOCK_HEADER_STRUCT = struct.Struct(">I")

FLAG_REBUFFERING = 0x0001


@dataclass(frozen=True)
class StatsRecord:
    """One telemetry sample from one peer."""

    timestamp: float
    peer_id: int
    session_id: int
    buffer_level: float
    download_rate: float
    upload_rate: float
    loss_fraction: float
    playback_delay: float
    neighbor_count: int
    rebuffering: bool = False

    def __post_init__(self) -> None:
        if not math.isfinite(self.timestamp):
            raise ValueError(f"timestamp must be finite, got {self.timestamp!r}")
        for name in (
            "buffer_level",
            "download_rate",
            "upload_rate",
            "playback_delay",
        ):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{name} must be finite and >= 0, got {value!r}")
            # The wire format stores these as float32; quantize eagerly so a
            # record always equals its serialized round-trip.
            object.__setattr__(self, name, float(np.float32(value)))
        if not 0.0 <= self.loss_fraction <= 1.0:
            raise ValueError(
                f"loss_fraction must lie in [0, 1], got {self.loss_fraction!r}"
            )
        object.__setattr__(
            self, "loss_fraction", float(np.float32(self.loss_fraction))
        )
        if not 0 <= self.peer_id < 2**32:
            raise ValueError(f"peer_id must fit in uint32, got {self.peer_id!r}")
        if not 0 <= self.session_id < 2**32:
            raise ValueError(f"session_id must fit in uint32, got {self.session_id!r}")
        if not 0 <= self.neighbor_count < 2**16:
            raise ValueError(
                f"neighbor_count must fit in uint16, got {self.neighbor_count!r}"
            )

    def to_bytes(self) -> bytes:
        """Serialize to the fixed 40-byte wire format."""
        flags = FLAG_REBUFFERING if self.rebuffering else 0
        return RECORD_STRUCT.pack(
            self.timestamp,
            self.peer_id,
            self.session_id,
            self.buffer_level,
            self.download_rate,
            self.upload_rate,
            self.loss_fraction,
            self.playback_delay,
            self.neighbor_count,
            flags,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "StatsRecord":
        """Parse one record from exactly :data:`RECORD_SIZE` bytes."""
        if len(data) != RECORD_SIZE:
            raise ValueError(
                f"expected {RECORD_SIZE} bytes, got {len(data)}"
            )
        (
            timestamp,
            peer_id,
            session_id,
            buffer_level,
            download_rate,
            upload_rate,
            loss_fraction,
            playback_delay,
            neighbor_count,
            flags,
        ) = RECORD_STRUCT.unpack(data)
        return cls(
            timestamp=timestamp,
            peer_id=peer_id,
            session_id=session_id,
            buffer_level=buffer_level,
            download_rate=download_rate,
            upload_rate=upload_rate,
            loss_fraction=loss_fraction,
            playback_delay=playback_delay,
            neighbor_count=neighbor_count,
            rebuffering=bool(flags & FLAG_REBUFFERING),
        )


class RecordCodec:
    """Pack telemetry records into fixed-size blocks and back.

    Network coding operates on equal-length byte blocks; the codec prepends
    a 4-byte record count, concatenates records, and zero-pads to
    ``block_size``.  ``records_per_block`` records fit into each block.
    """

    def __init__(self, block_size: int = 256) -> None:
        min_size = BLOCK_HEADER_STRUCT.size + RECORD_SIZE
        if block_size < min_size:
            raise ValueError(
                f"block_size must be >= {min_size} to hold one record, "
                f"got {block_size}"
            )
        self.block_size = block_size

    @property
    def records_per_block(self) -> int:
        """Maximum records that fit in one block."""
        return (self.block_size - BLOCK_HEADER_STRUCT.size) // RECORD_SIZE

    def pack_block(self, records: Sequence[StatsRecord]) -> np.ndarray:
        """Pack up to ``records_per_block`` records into one uint8 block."""
        if len(records) > self.records_per_block:
            raise ValueError(
                f"{len(records)} records exceed block capacity "
                f"{self.records_per_block}"
            )
        raw = BLOCK_HEADER_STRUCT.pack(len(records)) + b"".join(
            record.to_bytes() for record in records
        )
        padded = raw + b"\x00" * (self.block_size - len(raw))
        return np.frombuffer(padded, dtype=np.uint8).copy()

    def pack_stream(self, records: Sequence[StatsRecord]) -> List[np.ndarray]:
        """Pack a record stream into as many blocks as needed (>= 1)."""
        blocks: List[np.ndarray] = []
        per_block = self.records_per_block
        if not records:
            return [self.pack_block([])]
        for start in range(0, len(records), per_block):
            blocks.append(self.pack_block(records[start : start + per_block]))
        return blocks

    def unpack_block(self, block: np.ndarray) -> List[StatsRecord]:
        """Recover the records packed into one block."""
        data = np.asarray(block, dtype=np.uint8).tobytes()
        if len(data) != self.block_size:
            raise ValueError(
                f"block has {len(data)} bytes, expected {self.block_size}"
            )
        (count,) = BLOCK_HEADER_STRUCT.unpack_from(data, 0)
        if count > self.records_per_block:
            raise ValueError(
                f"block header claims {count} records, capacity is "
                f"{self.records_per_block} (corrupt block?)"
            )
        records = []
        offset = BLOCK_HEADER_STRUCT.size
        for _ in range(count):
            records.append(StatsRecord.from_bytes(data[offset : offset + RECORD_SIZE]))
            offset += RECORD_SIZE
        return records

    def unpack_stream(self, blocks: Iterable[np.ndarray]) -> List[StatsRecord]:
        """Recover the full record stream from consecutive blocks."""
        records: List[StatsRecord] = []
        for block in blocks:
            records.extend(self.unpack_block(block))
        return records


def synthesize_records(
    rng: random.Random,
    peer_id: int,
    session_id: int,
    count: int,
    start_time: float = 0.0,
    interval: float = 1.0,
    degraded: bool = False,
) -> List[StatsRecord]:
    """Generate a plausible telemetry stream for tests and examples.

    *degraded* produces the failure-mode signature (low buffer, high loss,
    rebuffering) that Sec. 1 argues makes departed peers' statistics "the
    most useful to diagnose system outages".
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    records = []
    for index in range(count):
        if degraded:
            buffer_level = max(0.0, rng.uniform(0.0, 2.0))
            loss = min(1.0, max(0.0, rng.uniform(0.1, 0.5)))
            download = max(0.0, rng.uniform(50.0, 300.0))
            rebuffering = rng.random() < 0.6
        else:
            buffer_level = max(0.0, rng.uniform(8.0, 30.0))
            loss = min(1.0, max(0.0, rng.uniform(0.0, 0.02)))
            download = max(0.0, rng.uniform(400.0, 1200.0))
            rebuffering = False
        records.append(
            StatsRecord(
                timestamp=start_time + index * interval,
                peer_id=peer_id,
                session_id=session_id,
                buffer_level=buffer_level,
                download_rate=download,
                upload_rate=max(0.0, rng.uniform(100.0, 600.0)),
                loss_fraction=loss,
                playback_delay=max(0.0, rng.uniform(0.5, 5.0)),
                neighbor_count=rng.randrange(4, 40),
                rebuffering=rebuffering,
            )
        )
    return records
