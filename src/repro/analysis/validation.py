"""Structured validation of simulation runs against the paper's theory.

Users extending the protocol want one call that answers "does my simulated
run still behave the way Sec. 4 predicts?"  :func:`validate_report`
evaluates Theorems 1, 2 and 4 for the run's parameters and returns a
per-metric comparison with relative errors and pass/fail flags against
caller-chosen tolerances.  The cross-model test suite is built from the
same checks, so library users and CI enforce the same contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.theorems import analyze
from repro.core.params import Parameters
from repro.sim.metrics import MetricsReport


@dataclass(frozen=True)
class MetricCheck:
    """One theory-vs-measurement comparison."""

    name: str
    measured: float
    predicted: float
    relative_error: float
    tolerance: float

    @property
    def passed(self) -> bool:
        return self.relative_error <= self.tolerance

    def __str__(self) -> str:
        status = "ok" if self.passed else "MISMATCH"
        return (
            f"{self.name}: measured {self.measured:.4f} vs predicted "
            f"{self.predicted:.4f} (err {self.relative_error:.1%}, "
            f"tol {self.tolerance:.0%}) {status}"
        )


@dataclass(frozen=True)
class ValidationResult:
    """All checks for one run."""

    checks: Dict[str, MetricCheck]
    applicable: bool
    reason: Optional[str] = None

    @property
    def passed(self) -> bool:
        """True when applicable and every individual check passed."""
        return self.applicable and all(c.passed for c in self.checks.values())

    def failures(self) -> Dict[str, MetricCheck]:
        """The checks that missed their tolerance."""
        return {name: c for name, c in self.checks.items() if not c.passed}

    def summary(self) -> str:
        """Multi-line human-readable report."""
        if not self.applicable:
            return f"validation not applicable: {self.reason}"
        return "\n".join(str(check) for check in self.checks.values())


#: Default tolerances, calibrated from the cross-model test suite at
#: N >= 150 peers and measurement windows >= 15/gamma.
DEFAULT_TOLERANCES = {
    "occupancy": 0.10,
    "empty_fraction": 0.10,
    "throughput": 0.10,
    "saved_blocks": 0.40,
}


def validate_report(
    report: MetricsReport,
    params: Parameters,
    tolerances: Optional[Dict[str, float]] = None,
) -> ValidationResult:
    """Compare one run's report against Theorems 1, 2 and 4.

    The theory describes the static mean-field network with the
    degree-proportional selection rule; runs outside that envelope (churn,
    time-varying workloads, the uniform selection rule) return
    ``applicable=False`` rather than a misleading verdict.
    """
    tols = dict(DEFAULT_TOLERANCES)
    if tolerances:
        unknown = set(tolerances) - set(tols)
        if unknown:
            raise ValueError(
                f"unknown tolerance keys {sorted(unknown)}; "
                f"valid: {sorted(tols)}"
            )
        tols.update(tolerances)

    if params.churn_enabled:
        return ValidationResult(
            checks={}, applicable=False,
            reason="theory does not model churn (Sec. 4 treats it by simulation)",
        )
    if params.segment_selection != "proportional":
        return ValidationResult(
            checks={}, applicable=False,
            reason="theory assumes degree-proportional selection (Eq. 2)",
        )
    if params.pull_policy != "random":
        return ValidationResult(
            checks={}, applicable=False,
            reason="theory models the random coupon-collector pull only",
        )

    point = analyze(
        params.arrival_rate,
        params.gossip_rate,
        params.deletion_rate,
        params.segment_size,
        params.normalized_capacity,
    )
    checks: Dict[str, MetricCheck] = {}

    def add(name: str, measured: float, predicted: float) -> None:
        if measured is None or (isinstance(measured, float) and math.isnan(measured)):
            return
        # Floor the denominator: metrics that are predicted ~0 (e.g. z0 in
        # busy networks) are compared on an absolute 0.01 scale instead of a
        # meaningless relative one.
        error = abs(measured - predicted) / max(abs(predicted), 0.01)
        checks[name] = MetricCheck(
            name=name,
            measured=float(measured),
            predicted=float(predicted),
            relative_error=error,
            tolerance=tols[name.split(":")[0]],
        )

    add("occupancy", report.mean_buffer_occupancy, point.storage.occupancy)
    add("empty_fraction", report.empty_peer_fraction, point.storage.z0)
    add(
        "throughput",
        report.normalized_throughput,
        point.throughput.normalized_throughput,
    )
    add(
        "saved_blocks",
        report.saved_blocks_per_peer,
        point.saved.saved_blocks_per_peer,
    )
    return ValidationResult(checks=checks, applicable=True)
