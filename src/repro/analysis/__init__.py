"""Analytical layer: ODE systems of Sec. 3, Theorems 1-4, bipartite process."""

from repro.analysis.bipartite import BipartiteProcess, BipartiteReport
from repro.analysis.ode import CollectionODE, ODEConfig, SegmentDegreeODE, SteadyState
from repro.analysis.transient import Trajectory, TransientCollectionODE
from repro.analysis.validation import (
    DEFAULT_TOLERANCES,
    MetricCheck,
    ValidationResult,
    validate_report,
)
from repro.analysis.theorems import (
    AnalyticalPoint,
    DelayResult,
    SavedDataResult,
    StorageResult,
    ThroughputResult,
    analyze,
    poisson_degree_distribution,
    solve_z0_fixed_point,
    theorem1_storage,
    theorem2_throughput,
    theorem2_throughput_s1,
    theorem3_block_delay,
    theorem4_saved_data,
)

__all__ = [
    "BipartiteProcess",
    "BipartiteReport",
    "CollectionODE",
    "ODEConfig",
    "SegmentDegreeODE",
    "SteadyState",
    "Trajectory",
    "TransientCollectionODE",
    "DEFAULT_TOLERANCES",
    "MetricCheck",
    "ValidationResult",
    "validate_report",
    "AnalyticalPoint",
    "DelayResult",
    "SavedDataResult",
    "StorageResult",
    "ThroughputResult",
    "analyze",
    "poisson_degree_distribution",
    "solve_z0_fixed_point",
    "theorem1_storage",
    "theorem2_throughput",
    "theorem2_throughput_s1",
    "theorem3_block_delay",
    "theorem4_saved_data",
]
