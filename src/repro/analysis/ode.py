"""The differential-equation characterization of Sec. 3 (Eqs. 7, 8, 12).

The paper maps the protocol onto a random bipartite graph process (segments
versus peers) and derives, in the ``N -> infinity`` limit, three coupled ODE
systems:

- **Eq. (7)** — the rescaled peer-degree distribution ``z_i(t)``
  (``z_i = Y_i / N``: fraction of peers buffering ``i`` blocks),
- **Eq. (8)** — the rescaled segment-degree distribution ``w_i(t)``
  (``w_i = X_i / N``: segments with ``i`` blocks in the network, per peer),
- **Eq. (12)** — the rescaled segment collection matrix ``m_i^j(t)``
  (degree-``i`` segments of which the servers already hold ``j`` linearly
  independent blocks, per peer).

Since ``w_i = sum_j m_i^j`` identically (the collection terms of (12)
telescope over ``j``), we integrate ``z`` and ``m`` and obtain ``w`` as the
row sum — a consistency that the test suite verifies against a standalone
integration of (8).

Truncation: ``z`` is naturally finite (``i <= B``); the segment-degree index
is truncated at ``i_max`` with a reflecting boundary (the transfer flux out
of ``i_max`` is suppressed), which conserves segment mass; the steady-state
solver reports the boundary occupancy so a too-small ``i_max`` is visible
rather than silent.

Fidelity notes — the ODEs inherit the paper's two modeling approximations,
both of which the event simulator does *not* make:

1. degree-proportional segment selection (the "equivalence" assumed above
   Eq. (2)): servers and gossip pick segments with probability proportional
   to degree, whereas the protocol picks a uniform non-empty peer and then a
   uniform buffered segment;
2. every collected coded block of a needed segment is innovative.

Comparing ODE curves with simulation curves therefore reproduces the
analytical-versus-simulation gaps visible in the paper's figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.integrate import solve_ivp

from repro.core.params import Parameters
from repro.util.validation import (
    require_positive,
    require_positive_int,
    require_rate,
)


@dataclass(frozen=True)
class ODEConfig:
    """Numerical configuration of the ODE integration."""

    #: peer-degree truncation B; None = auto (mean + 8 sigma, >= 3 segments)
    z_max: Optional[int] = None
    #: segment-degree truncation; None = auto (max(4*rho, 3s, 60))
    i_max: Optional[int] = None
    #: integration horizon for the steady-state solve (units of 1/gamma)
    t_end: float = 120.0
    #: solver tolerances
    rtol: float = 1e-8
    atol: float = 1e-10
    #: steady-state acceptance: max |dy/dt| must fall below this
    steady_tol: float = 1e-7
    #: extend integration (doubling t_end) at most this many times
    max_extensions: int = 3

    def __post_init__(self) -> None:
        require_positive("t_end", self.t_end)
        require_positive("rtol", self.rtol)
        require_positive("atol", self.atol)
        require_positive("steady_tol", self.steady_tol)
        if self.z_max is not None:
            require_positive_int("z_max", self.z_max)
        if self.i_max is not None:
            require_positive_int("i_max", self.i_max)


@dataclass(frozen=True)
class SteadyState:
    """Steady-state solution of the coupled systems.

    Attributes:
        z: peer-degree distribution, shape (B+1,), sums to 1.
        w: segment-degree distribution per peer, shape (i_max+1,), index 0
           unused (a degree-0 segment does not exist).
        m: collection matrix per peer, shape (i_max+1, s+1), rows 1..i_max.
        e: average blocks per peer (edge density), ``sum i*z_i``.
        residual: max |dy/dt| at the accepted state.
        tail_mass: ``w[i_max]`` occupancy (truncation diagnostic).
    """

    z: np.ndarray
    w: np.ndarray
    m: np.ndarray
    e: float
    residual: float
    tail_mass: float

    @property
    def z0(self) -> float:
        """Steady-state fraction of empty peers."""
        return float(self.z[0])

    @property
    def segments_per_peer(self) -> float:
        """Total live segments per peer, ``sum_i w_i``."""
        return float(self.w[1:].sum())

    @property
    def occupancy(self) -> float:
        """Mean buffered blocks per peer (Theorem 1's rho)."""
        return self.e


class CollectionODE:
    """Integrator of the coupled (7) + (12) systems for one parameter set."""

    def __init__(
        self,
        arrival_rate: float,
        gossip_rate: float,
        deletion_rate: float,
        segment_size: int,
        normalized_capacity: float,
        config: Optional[ODEConfig] = None,
    ) -> None:
        self.lam = require_rate("arrival_rate", arrival_rate)
        self.mu = require_rate("gossip_rate", gossip_rate, allow_zero=True)
        self.gamma = require_rate("deletion_rate", deletion_rate)
        self.s = require_positive_int("segment_size", segment_size)
        self.c = require_rate("normalized_capacity", normalized_capacity)
        self.config = config or ODEConfig()

        rho_bound = (self.lam + self.mu) / self.gamma
        if self.config.z_max is not None:
            self.B = self.config.z_max
        else:
            self.B = max(
                int(math.ceil(rho_bound + 8.0 * math.sqrt(max(rho_bound, 1.0)))),
                3 * self.s,
                16,
            )
        if self.B < self.s:
            raise ValueError(
                f"z truncation B={self.B} is below the segment size s={self.s}"
            )
        if self.config.i_max is not None:
            self.i_max = self.config.i_max
        else:
            self.i_max = max(int(math.ceil(4.0 * rho_bound)), 3 * self.s, 60)

        self._n_z = self.B + 1
        self._n_m = self.i_max * (self.s + 1)  # rows i=1..i_max
        #: degree index column vector for the m rows (i = 1..i_max)
        self._degrees = np.arange(1, self.i_max + 1, dtype=float)

    @classmethod
    def from_parameters(
        cls, params: Parameters, config: Optional[ODEConfig] = None
    ) -> "CollectionODE":
        """Build the model from a full protocol :class:`Parameters`."""
        return cls(
            arrival_rate=params.arrival_rate,
            gossip_rate=params.gossip_rate,
            deletion_rate=params.deletion_rate,
            segment_size=params.segment_size,
            normalized_capacity=params.normalized_capacity,
            config=config,
        )

    # -- state packing ------------------------------------------------------

    def initial_state(self) -> np.ndarray:
        """Empty network: every peer at degree 0, no segments."""
        y = np.zeros(self._n_z + self._n_m)
        y[0] = 1.0  # z_0 = 1
        return y

    def _unpack(self, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        z = y[: self._n_z]
        m = y[self._n_z :].reshape(self.i_max, self.s + 1)
        return z, m

    # -- right-hand side ------------------------------------------------------

    def rhs(self, t: float, y: np.ndarray) -> np.ndarray:
        """d/dt of the packed state [z, m]."""
        z, m = self._unpack(y)
        B, s = self.B, self.s
        lam, mu, gamma, c = self.lam, self.mu, self.gamma, self.c

        dz = np.zeros_like(z)
        dm = np.zeros_like(m)

        # Edge density e(t) = sum_i i*z_i; guard the early instants when the
        # network is still empty.
        degrees_z = np.arange(B + 1, dtype=float)
        e = float(degrees_z @ z)
        z0 = float(z[0])
        zB = float(z[B])

        # ---- Eq. (1): gossip transfer on the peer side -----------------------
        if mu > 0.0:
            denom = max(1.0 - zB, 1e-12)
            rate = (1.0 - z0) * mu / denom
            # gain at i from i-1; loss at i toward i+1 (none at the cap B)
            dz[1:] += z[:-1] * rate
            dz[:B] -= z[:B] * rate

        # ---- Eq. (5): segment injection (blocked above degree B - s) ---------
        inj = lam / s
        can = slice(0, B - s + 1)  # peers with degree <= B - s can inject
        dz_inj_loss = np.zeros_like(z)
        dz_inj_loss[can] = z[can] * inj
        dz -= dz_inj_loss
        dz[s : B + 1] += dz_inj_loss[0 : B - s + 1]
        injection_fraction = float(z[can].sum())  # 1 - z_(f) of Eq. (6)

        # ---- Eq. (3): block deletion on the peer side -------------------------
        dz[:B] += degrees_z[1:] * z[1:] * gamma
        dz -= degrees_z * z * gamma

        # ---- segment side (Eq. 12) -------------------------------------------
        if e > 1e-12:
            i = self._degrees[:, None]  # (i_max, 1) broadcasts over states j
            # transfer: degree-proportional growth at per-edge rate
            # (1 - z0) * mu / e; reflecting boundary at i_max.
            if mu > 0.0:
                growth = (1.0 - z0) * mu / e
                flux = i * m * growth  # outflow of row i (all j)
                flux[-1, :] = 0.0  # reflect at the truncation boundary
                dm -= flux
                dm[1:, :] += flux[:-1, :]
            # deletion: degree-proportional decay at per-edge rate gamma;
            # the i=1 outflow is segment extinction (mass leaves the system).
            decay = i * m * gamma
            dm -= decay
            dm[:-1, :] += decay[1:, :] * 1.0
            # server collection: per-edge pull rate c / e advances the state
            # j -> j+1 while j < s; state s absorbs (redundant pulls).
            pull = c / e
            collect = i * m[:, :s] * pull  # flux out of states 0..s-1
            dm[:, :s] -= collect
            dm[:, 1 : s + 1] += collect
        # injection: new segments arrive at degree s, state 0.
        dm[s - 1, 0] += inj * injection_fraction

        out = np.empty_like(y)
        out[: self._n_z] = dz
        out[self._n_z :] = dm.reshape(-1)
        return out

    # -- z subsystem (closed in itself) -------------------------------------

    def rhs_z(self, t: float, z: np.ndarray) -> np.ndarray:
        """d/dt of the peer-degree system alone (Eq. 7)."""
        y = np.zeros(self._n_z + self._n_m)
        y[: self._n_z] = z
        return self.rhs(t, y)[: self._n_z]

    def steady_z(self) -> Tuple[np.ndarray, float]:
        """Steady peer-degree distribution via integration of Eq. (7).

        Returns (z, residual).  The z-system is small (B+1 states) and
        non-stiff enough for LSODA at any parameterization we use.
        """
        t_end = self.config.t_end / self.gamma
        z = np.zeros(self._n_z)
        z[0] = 1.0
        residual = math.inf
        for _ in range(self.config.max_extensions + 1):
            solution = solve_ivp(
                self.rhs_z,
                (0.0, t_end),
                z,
                method="LSODA",
                rtol=self.config.rtol,
                atol=self.config.atol,
            )
            if not solution.success:
                raise RuntimeError(
                    f"z-system integration failed: {solution.message}"
                )
            z = solution.y[:, -1]
            residual = float(np.max(np.abs(self.rhs_z(t_end, z))))
            if residual < self.config.steady_tol:
                return z, residual
            t_end *= 2.0
        raise RuntimeError(
            f"z steady state not reached: residual {residual:.3e} "
            f"(tol {self.config.steady_tol:.1e})"
        )

    # -- m subsystem: linear once z is frozen ----------------------------------

    def steady_m(self, z: np.ndarray) -> np.ndarray:
        """Exact steady collection matrix by sparse direct solve.

        Given the steady ``z`` (hence constant ``z0`` and ``e``), Eq. (12)
        is linear in ``m``: build the generator matrix A with the reflecting
        boundary at ``i_max`` and solve ``A m = -injection``.  Extinction at
        degree 1 makes A strictly diagonally dominant in the relevant sense
        (an M-matrix), so the solve is well posed.
        """
        from scipy.sparse import lil_matrix
        from scipy.sparse.linalg import spsolve

        s = self.s
        degrees_z = np.arange(self.B + 1, dtype=float)
        e = float(degrees_z @ z)
        if e <= 0:
            raise ValueError("steady z has zero edge density; cannot solve m")
        z0 = float(z[0])
        growth = (1.0 - z0) * self.mu / e
        pull = self.c / e
        gamma = self.gamma
        inj = self.lam / s * float(z[: self.B - s + 1].sum())

        n_cols = self.s + 1

        def idx(i: int, j: int) -> int:
            return (i - 1) * n_cols + j

        size = self.i_max * n_cols
        matrix = lil_matrix((size, size))
        rhs_vec = np.zeros(size)
        for i in range(1, self.i_max + 1):
            for j in range(n_cols):
                row = idx(i, j)
                diag = 0.0
                # growth outflow i -> i+1 (suppressed at the boundary)
                if i < self.i_max:
                    diag -= i * growth
                # growth inflow from i-1
                if i > 1:
                    matrix[row, idx(i - 1, j)] += (i - 1) * growth
                # deletion outflow i -> i-1 (extinction when i=1)
                diag -= i * gamma
                # deletion inflow from i+1
                if i < self.i_max:
                    matrix[row, idx(i + 1, j)] += (i + 1) * gamma
                # collection j -> j+1 while j < s
                if j < s:
                    diag -= i * pull
                if j >= 1:
                    matrix[row, idx(i, j - 1)] += i * pull
                matrix[row, row] = diag
        rhs_vec[idx(s, 0)] = -inj
        solution = spsolve(matrix.tocsr(), rhs_vec)
        m = solution.reshape(self.i_max, n_cols)
        # Numerical noise can leave tiny negatives; clip for downstream sums.
        return np.clip(m, 0.0, None)

    # -- integration of the coupled transient ------------------------------------

    def integrate(
        self,
        t_end: float,
        y0: Optional[np.ndarray] = None,
        method: str = "RK45",
        rtol: float = 1e-6,
        atol: float = 1e-9,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Integrate the full coupled transient to *t_end*.

        Used for time-dependent studies and tests; steady states should use
        :meth:`steady_state`, which is exact and much faster.  Tolerances
        default looser than the steady-state solve: the transient has
        thousands of states and explicit steppers pay for every digit.
        """
        if not math.isfinite(t_end) or t_end <= 0:
            raise ValueError(f"t_end must be finite and > 0, got {t_end!r}")
        if y0 is None:
            y0 = self.initial_state()
        solution = solve_ivp(
            self.rhs,
            (0.0, t_end),
            y0,
            method=method,
            rtol=rtol,
            atol=atol,
        )
        if not solution.success:
            raise RuntimeError(f"ODE integration failed: {solution.message}")
        y_final = solution.y[:, -1]
        return y_final, self.rhs(t_end, y_final)

    def steady_state(self) -> SteadyState:
        """Steady state: integrate the z-system, then solve m exactly."""
        z, residual_z = self.steady_z()
        m_rows = self.steady_m(z)
        y = np.concatenate([z, m_rows.reshape(-1)])
        residual_m = float(np.max(np.abs(self.rhs(0.0, y)[self._n_z :])))
        return self._freeze(y, max(residual_z, residual_m))

    def _freeze(self, y: np.ndarray, residual: float) -> SteadyState:
        z, m_rows = self._unpack(y)
        # Re-index m with a zero row 0 so m[i, j] means degree i directly.
        m = np.zeros((self.i_max + 1, self.s + 1))
        m[1:, :] = m_rows
        w = m.sum(axis=1)
        degrees_z = np.arange(self.B + 1, dtype=float)
        e = float(degrees_z @ z)
        return SteadyState(
            z=z.copy(),
            w=w,
            m=m,
            e=e,
            residual=residual,
            tail_mass=float(w[self.i_max]),
        )


class SegmentDegreeODE:
    """Standalone integrator of Eq. (8) for the w_i system.

    Exists to *verify* the identity ``w_i = sum_j m_i^j``: the test suite
    integrates this system independently and compares with the row sums of
    the coupled model.  Requires the z-trajectory inputs ``z0`` and ``e`` to
    be supplied (in steady state they are constants).
    """

    def __init__(
        self,
        arrival_rate: float,
        gossip_rate: float,
        deletion_rate: float,
        segment_size: int,
        z0: float,
        e: float,
        i_max: int,
        injection_fraction: float = 1.0,
    ) -> None:
        self.lam = require_rate("arrival_rate", arrival_rate)
        self.mu = require_rate("gossip_rate", gossip_rate, allow_zero=True)
        self.gamma = require_rate("deletion_rate", deletion_rate)
        self.s = require_positive_int("segment_size", segment_size)
        if not 0.0 <= z0 <= 1.0:
            raise ValueError(f"z0 must lie in [0, 1], got {z0}")
        self.z0 = z0
        self.e = require_positive("e", e)
        self.i_max = require_positive_int("i_max", i_max)
        if not 0.0 <= injection_fraction <= 1.0:
            raise ValueError(
                f"injection_fraction must lie in [0, 1], got {injection_fraction}"
            )
        self.injection_fraction = injection_fraction
        self._degrees = np.arange(1, i_max + 1, dtype=float)

    def rhs(self, t: float, w: np.ndarray) -> np.ndarray:
        dw = np.zeros_like(w)
        i = self._degrees
        if self.mu > 0.0:
            growth = (1.0 - self.z0) * self.mu / self.e
            flux = i * w * growth
            flux[-1] = 0.0
            dw -= flux
            dw[1:] += flux[:-1]
        decay = i * w * self.gamma
        dw -= decay
        dw[:-1] += decay[1:]
        dw[self.s - 1] += self.lam / self.s * self.injection_fraction
        return dw

    def steady_state(self, t_end: float = 200.0) -> np.ndarray:
        """Integrate from empty to *t_end*; returns w with a zero row 0."""
        solution = solve_ivp(
            self.rhs,
            (0.0, t_end / self.gamma),
            np.zeros(self.i_max),
            method="LSODA",
            rtol=1e-9,
            atol=1e-11,
        )
        if not solution.success:
            raise RuntimeError(f"w-system integration failed: {solution.message}")
        w = np.zeros(self.i_max + 1)
        w[1:] = solution.y[:, -1]
        return w
