"""Closed-form and steady-state analytical results: Theorems 1-4 of Sec. 4.

Each theorem gets one entry point returning a small result dataclass:

- :func:`theorem1_storage` — storage overhead and buffer occupancy from the
  fixed point ``z0 = exp(-(1-z0) mu/gamma - lambda/gamma)``.
- :func:`theorem2_throughput_s1` — the explicit non-coding throughput via
  the quadratic root ``theta_+``.
- :func:`theorem2_throughput` — the general-``s`` throughput from the ODE
  steady state, ``Nc (1 - sum_i i m_i^s / rho)`` (reported normalized).
- :func:`theorem3_block_delay` — Little's-law block delivery delay,
  ``sum w_i / lambda - sum m_i^s / (lambda sigma)``.
- :func:`theorem4_saved_data` — data buffered for future delivery,
  ``s * sum_{i>=s} (w_i - m_i^s)`` per peer.

All quantities are *per peer* / normalized, matching the paper's plots; the
absolute versions are the normalized values times ``N`` (and times
``lambda`` where applicable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.ode import CollectionODE, ODEConfig, SteadyState
from repro.util.validation import require_positive_int, require_rate


@dataclass(frozen=True)
class StorageResult:
    """Theorem 1: steady-state buffering footprint of the protocol."""

    z0: float
    occupancy: float  # rho: mean blocks per peer
    overhead: float  # (1 - z0) mu / gamma: gossip-attributable part
    overhead_bound: float  # mu / gamma

    @property
    def within_bound(self) -> bool:
        """Sanity: the theorem's strict bound overhead < mu/gamma."""
        return self.overhead < self.overhead_bound or math.isclose(
            self.overhead, self.overhead_bound
        )


def solve_z0_fixed_point(
    arrival_rate: float,
    gossip_rate: float,
    deletion_rate: float,
    tol: float = 1e-14,
    max_iterations: int = 10_000,
) -> float:
    """Solve ``z0 = exp(-(1-z0) mu/gamma - lambda/gamma)`` on [0, 1].

    The right-hand side is increasing in z0 with derivative
    ``(mu/gamma) * rhs < mu/gamma * z0_max``; plain fixed-point iteration
    from 0 converges monotonically (the map is a contraction on [0, 1] for
    the regimes of interest and bounded iteration plus a bisection fallback
    covers the rest).
    """
    lam = require_rate("arrival_rate", arrival_rate)
    mu = require_rate("gossip_rate", gossip_rate, allow_zero=True)
    gamma = require_rate("deletion_rate", deletion_rate)

    def rhs(z0: float) -> float:
        return math.exp(-(1.0 - z0) * mu / gamma - lam / gamma)

    z0 = 0.0
    for _ in range(max_iterations):
        nxt = rhs(z0)
        if abs(nxt - z0) < tol:
            return nxt
        z0 = nxt
    # Bisection fallback on g(x) = x - rhs(x), which is negative at 0 and
    # positive at 1 (rhs(1) = exp(-lambda/gamma) < 1).
    low, high = 0.0, 1.0
    for _ in range(200):
        mid = 0.5 * (low + high)
        if mid - rhs(mid) < 0:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def theorem1_storage(
    arrival_rate: float, gossip_rate: float, deletion_rate: float
) -> StorageResult:
    """Theorem 1 (Storage Overhead), closed form for large B.

    The fixed-point z0 is exact for s=1; for s >= 2 the paper applies the
    same expression (the mean occupancy rho is s-independent by rate
    balance even though the full distribution is not Poisson).
    """
    z0 = solve_z0_fixed_point(arrival_rate, gossip_rate, deletion_rate)
    overhead = (1.0 - z0) * gossip_rate / deletion_rate
    rho = overhead + arrival_rate / deletion_rate
    return StorageResult(
        z0=z0,
        occupancy=rho,
        overhead=overhead,
        overhead_bound=gossip_rate / deletion_rate,
    )


def poisson_degree_distribution(rho: float, z0: float, max_degree: int) -> np.ndarray:
    """Theorem 1's peer-degree law ``z_i = z0 rho^i / i!`` up to *max_degree*."""
    if max_degree < 0:
        raise ValueError(f"max_degree must be >= 0, got {max_degree}")
    z = np.empty(max_degree + 1)
    z[0] = z0
    for i in range(1, max_degree + 1):
        z[i] = z[i - 1] * rho / i
    return z


@dataclass(frozen=True)
class ThroughputResult:
    """Theorem 2: session throughput of the collection session."""

    normalized_throughput: float  # Throughput / (N * lambda)
    efficiency: float  # eta: useful fraction of server pulls
    capacity_ratio: float  # c / lambda: the dashed capacity line
    segment_size: int

    @property
    def fraction_of_capacity(self) -> float:
        """How close the session runs to the server capacity line."""
        if self.capacity_ratio == 0:
            return 0.0
        return min(self.normalized_throughput / min(self.capacity_ratio, 1.0), 1.0)


def theorem2_throughput_s1(
    arrival_rate: float,
    gossip_rate: float,
    deletion_rate: float,
    normalized_capacity: float,
) -> ThroughputResult:
    """Theorem 2's explicit non-coding (s=1) throughput.

    ``Throughput(1) = N lambda (1 - 1/theta_+)`` with ``theta_+`` the larger
    root of ``alpha_2 x^2 + alpha_1 x + alpha_0 = 0`` where
    ``alpha_0 = -q gamma``, ``alpha_1 = q gamma + gamma + c/rho``,
    ``alpha_2 = -gamma`` and ``q = 1 - lambda/(rho gamma)``.
    """
    lam = require_rate("arrival_rate", arrival_rate)
    gamma = require_rate("deletion_rate", deletion_rate)
    c = require_rate("normalized_capacity", normalized_capacity)
    storage = theorem1_storage(lam, gossip_rate, gamma)
    rho = storage.occupancy
    q = 1.0 - lam / (rho * gamma)
    alpha2 = -gamma
    alpha1 = q * gamma + gamma + c / rho
    alpha0 = -q * gamma
    discriminant = alpha1 * alpha1 - 4.0 * alpha2 * alpha0
    if discriminant < 0:
        raise ValueError(
            "no real root for theta_+; parameters outside Theorem 2's regime"
        )
    theta_plus = (-alpha1 - math.sqrt(discriminant)) / (2.0 * alpha2)
    # (alpha2 < 0, so the larger root takes the minus branch.)
    if theta_plus <= 0:
        raise ValueError(f"theta_+ = {theta_plus} is not positive")
    normalized = 1.0 - 1.0 / theta_plus
    normalized = min(max(normalized, 0.0), 1.0)
    eta = normalized * lam / c if c > 0 else 0.0
    return ThroughputResult(
        normalized_throughput=normalized,
        efficiency=min(eta, 1.0),
        capacity_ratio=c / lam,
        segment_size=1,
    )


def theorem2_throughput(
    steady: SteadyState,
    arrival_rate: float,
    normalized_capacity: float,
    segment_size: int,
) -> ThroughputResult:
    """Theorem 2's general-s throughput from the ODE steady state.

    ``Throughput(s) = N c (1 - sum_i i m_i^s / rho)`` — the efficiency is
    the probability that a degree-proportional segment draw lands on a
    segment the servers still need.
    """
    lam = require_rate("arrival_rate", arrival_rate)
    c = require_rate("normalized_capacity", normalized_capacity)
    require_positive_int("segment_size", segment_size)
    degrees = np.arange(steady.m.shape[0], dtype=float)
    redundant_edges = float(degrees @ steady.m[:, segment_size])
    rho = steady.e
    eta = 1.0 - redundant_edges / rho if rho > 0 else 0.0
    eta = min(max(eta, 0.0), 1.0)
    normalized = c * eta / lam
    return ThroughputResult(
        normalized_throughput=min(normalized, 1.0),
        efficiency=eta,
        capacity_ratio=c / lam,
        segment_size=segment_size,
    )


@dataclass(frozen=True)
class DelayResult:
    """Theorem 3: average per-original-block delivery delay."""

    block_delay: float
    segment_delay: float
    segment_lifetime: float  # T_L: injection to extinction
    good_time: float  # T_M: time spent decodable-at-servers


def theorem3_block_delay(
    steady: SteadyState,
    arrival_rate: float,
    normalized_throughput: float,
    segment_size: int,
) -> DelayResult:
    """Theorem 3 (Block Delivery Delay) via Little's theorem.

    ``T(s) = sum_i w_i / lambda - sum_i m_i^s / (lambda sigma)`` where
    ``sigma`` is the normalized throughput of Theorem 2.
    """
    lam = require_rate("arrival_rate", arrival_rate)
    s = require_positive_int("segment_size", segment_size)
    if normalized_throughput <= 0:
        raise ValueError(
            f"normalized throughput must be > 0, got {normalized_throughput}"
        )
    sigma = normalized_throughput
    total_segments = float(steady.w[1:].sum())
    good_segments = float(steady.m[1:, s].sum())
    lifetime = s * total_segments / lam
    good_time = s * good_segments / (lam * sigma)
    segment_delay = lifetime - good_time
    return DelayResult(
        block_delay=segment_delay / s,
        segment_delay=segment_delay,
        segment_lifetime=lifetime,
        good_time=good_time,
    )


@dataclass(frozen=True)
class SavedDataResult:
    """Theorem 4: data buffered in the network for future delivery."""

    saved_blocks_per_peer: float
    decodable_segments_per_peer: float
    reconstructed_segments_per_peer: float


def theorem4_saved_data(steady: SteadyState, segment_size: int) -> SavedDataResult:
    """Theorem 4: ``S/N = s sum_{i>=s} (w_i - m_i^s)``.

    The population counted is segments decodable from network blocks
    (degree >= s) that the servers have not reconstructed yet; each is worth
    ``s`` original blocks once pulled.
    """
    s = require_positive_int("segment_size", segment_size)
    decodable = float(steady.w[s:].sum())
    reconstructed = float(steady.m[s:, s].sum())
    saved = s * (decodable - reconstructed)
    return SavedDataResult(
        saved_blocks_per_peer=max(saved, 0.0),
        decodable_segments_per_peer=decodable,
        reconstructed_segments_per_peer=reconstructed,
    )


@dataclass(frozen=True)
class AnalyticalPoint:
    """All four theorems evaluated for one parameter set."""

    storage: StorageResult
    throughput: ThroughputResult
    delay: DelayResult
    saved: SavedDataResult
    steady: SteadyState


def analyze(
    arrival_rate: float,
    gossip_rate: float,
    deletion_rate: float,
    segment_size: int,
    normalized_capacity: float,
    config: Optional[ODEConfig] = None,
) -> AnalyticalPoint:
    """Solve the ODE steady state and evaluate Theorems 1-4 on it."""
    model = CollectionODE(
        arrival_rate=arrival_rate,
        gossip_rate=gossip_rate,
        deletion_rate=deletion_rate,
        segment_size=segment_size,
        normalized_capacity=normalized_capacity,
        config=config,
    )
    steady = model.steady_state()
    storage = theorem1_storage(arrival_rate, gossip_rate, deletion_rate)
    throughput = theorem2_throughput(
        steady, arrival_rate, normalized_capacity, segment_size
    )
    delay = theorem3_block_delay(
        steady, arrival_rate, max(throughput.normalized_throughput, 1e-12),
        segment_size,
    )
    saved = theorem4_saved_data(steady, segment_size)
    return AnalyticalPoint(
        storage=storage,
        throughput=throughput,
        delay=delay,
        saved=saved,
        steady=steady,
    )
