"""The random bipartite graph process of Sec. 3, simulated directly.

This is the middle fidelity level between the ODE limit and the full
protocol simulator: segments and peers are vertices, every block copy is an
edge, and exactly the four graph operations of Sec. 3 drive the evolution —

- **segment injection**: at rate λ/s per eligible peer (degree ≤ B−s), add a
  new segment vertex with s edges to that peer;
- **block encoding and transfer**: at rate μ per non-empty peer, pick a
  segment adjacent to the peer and add one edge from it to a uniformly
  random peer that still needs the segment (multiplicity < s) and has room;
- **block deletion**: every edge dies at rate γ (realized as a global
  deletion clock of rate E·γ removing a uniformly random edge — equivalent
  by memorylessness, and cheaper than one timer per edge);
- **server collection**: at aggregate rate c·N, pick a uniformly random
  non-empty peer, a segment adjacent to it, and advance that segment's
  collection state if it is below s.

Segment adjacency draws use the *degree-proportional* rule (a uniformly
random incident edge), which is the approximation under which the paper
derives Eqs. (2), (8), (12); running this process therefore validates the
ODE solutions against an independent finite-N implementation.

The implementation is a Gillespie loop: between events all rates are
constant, so drawing ``Exp(total_rate)`` and then a category proportional to
the current rates is an exact simulation, with no per-block timers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.rng import SeedSequenceRegistry
from repro.util.randomset import RandomizedSet
from repro.util.validation import (
    require_positive,
    require_positive_int,
    require_rate,
)


class _Edge:
    """One block copy: an edge between a segment and a peer."""

    __slots__ = ("segment", "peer")

    def __init__(self, segment: "_Segment", peer: int) -> None:
        self.segment = segment
        self.peer = peer


class _Segment:
    """Segment vertex: degree, collection state, and holder multiplicities."""

    __slots__ = ("segment_id", "size", "state", "holders", "injected_at")

    def __init__(self, segment_id: int, size: int, injected_at: float) -> None:
        self.segment_id = segment_id
        self.size = size
        self.state = 0  # blocks collected by the servers (0..size)
        self.holders: Dict[int, int] = {}  # peer -> edge multiplicity
        self.injected_at = injected_at

    @property
    def degree(self) -> int:
        return sum(self.holders.values())  # lint: ok(R4): integer multiplicities, exact

    @property
    def is_complete(self) -> bool:
        return self.state >= self.size


@dataclass
class BipartiteReport:
    """Measurement-window results of one bipartite-process run."""

    window: float
    pulls: int
    useful_pulls: int
    normalized_throughput: float
    efficiency: float
    mean_occupancy: float
    empty_fraction: float
    saved_blocks_per_peer: float
    segments_completed: int


class BipartiteProcess:
    """Finite-N realization of the Sec. 3 graph process."""

    def __init__(
        self,
        n_peers: int,
        arrival_rate: float,
        gossip_rate: float,
        deletion_rate: float,
        segment_size: int,
        normalized_capacity: float,
        buffer_capacity: Optional[int] = None,
        seed: int = 0,
        target_tries: int = 32,
    ) -> None:
        self.n = require_positive_int("n_peers", n_peers)
        self.lam = require_rate("arrival_rate", arrival_rate)
        self.mu = require_rate("gossip_rate", gossip_rate, allow_zero=True)
        self.gamma = require_rate("deletion_rate", deletion_rate)
        self.s = require_positive_int("segment_size", segment_size)
        self.c = require_rate("normalized_capacity", normalized_capacity)
        if buffer_capacity is None:
            rho = (self.lam + self.mu) / self.gamma
            buffer_capacity = max(
                int(rho + 8.0 * max(rho, 1.0) ** 0.5), 3 * self.s, 16
            )
        self.B = require_positive_int("buffer_capacity", buffer_capacity)
        if self.B < self.s:
            raise ValueError(f"buffer capacity {self.B} below segment size {self.s}")
        self.target_tries = require_positive_int("target_tries", target_tries)
        self._rng = SeedSequenceRegistry(seed).python("bipartite")

        self.now = 0.0
        self.peer_degree: List[int] = [0] * self.n
        #: per-peer incident edges (uniform edge draw = degree-proportional
        #: adjacent-segment draw, the analysis's selection rule)
        self._peer_edges: List[RandomizedSet] = [
            RandomizedSet() for _ in range(self.n)
        ]
        self._nonempty: RandomizedSet[int] = RandomizedSet()
        self._edges: RandomizedSet[_Edge] = RandomizedSet()
        self._segments: Dict[int, _Segment] = {}
        self._next_segment_id = 0

        # measurement state
        self._win_start = 0.0
        self._pulls = 0
        self._useful = 0
        self._completed = 0
        self._occupancy_integral = 0.0
        self._empty_integral = 0.0
        self._saved_integral = 0.0
        self._saved_count = 0
        self._last_t = 0.0

    # -- bookkeeping ------------------------------------------------------------

    @property
    def edge_count(self) -> int:
        """Total live edges E(t) (blocks in the network)."""
        return len(self._edges)

    @property
    def empty_count(self) -> int:
        """Peers of degree zero (Y_0)."""
        return self.n - len(self._nonempty)

    def _advance_integrals(self, t: float) -> None:
        dt = t - self._last_t
        self._occupancy_integral += len(self._edges) * dt
        self._empty_integral += self.empty_count * dt
        self._saved_integral += self._saved_count * dt
        self._last_t = t

    def _saved_flag(self, segment: _Segment) -> bool:
        return segment.degree >= segment.size and not segment.is_complete

    def _update_saved(self, segment: _Segment, before: bool) -> None:
        after = self._saved_flag(segment)
        if after and not before:
            self._saved_count += 1
        elif before and not after:
            self._saved_count -= 1

    def _add_edge(self, segment: _Segment, peer: int) -> None:
        before = self._saved_flag(segment)
        edge = _Edge(segment, peer)
        self._edges.add(edge)
        self._peer_edges[peer].add(edge)
        segment.holders[peer] = segment.holders.get(peer, 0) + 1
        if self.peer_degree[peer] == 0:
            self._nonempty.add(peer)
        self.peer_degree[peer] += 1
        self._update_saved(segment, before)

    def _remove_edge(self, edge: _Edge) -> None:
        segment, peer = edge.segment, edge.peer
        before = self._saved_flag(segment)
        self._edges.remove(edge)
        self._peer_edges[peer].remove(edge)
        multiplicity = segment.holders[peer] - 1
        if multiplicity:
            segment.holders[peer] = multiplicity
        else:
            del segment.holders[peer]
        self.peer_degree[peer] -= 1
        if self.peer_degree[peer] == 0:
            self._nonempty.discard(peer)
        self._update_saved(segment, before)
        if not segment.holders:
            del self._segments[segment.segment_id]

    # -- the four graph operations ------------------------------------------------

    def _op_inject(self) -> None:
        peer = self._rng.randrange(self.n)
        if self.peer_degree[peer] > self.B - self.s:
            return  # blocked: Sec. 3 adds edges only to peers of degree <= B-s
        segment = _Segment(self._next_segment_id, self.s, self.now)
        self._next_segment_id += 1
        self._segments[segment.segment_id] = segment
        for _ in range(self.s):
            self._add_edge(segment, peer)

    def _op_gossip(self) -> None:
        if not self._nonempty:
            return
        sender = self._nonempty.sample(self._rng)
        segment = self._peer_edges[sender].sample(self._rng).segment
        for _ in range(self.target_tries):
            target = self._rng.randrange(self.n)
            if target == sender:
                continue
            if self.peer_degree[target] >= self.B:
                continue
            if segment.holders.get(target, 0) >= self.s:
                continue
            self._add_edge(segment, target)
            return

    def _op_delete(self) -> None:
        if self._edges:
            self._remove_edge(self._edges.sample(self._rng))

    def _op_collect(self) -> None:
        self._pulls += 1
        if not self._nonempty:
            return
        peer = self._nonempty.sample(self._rng)
        segment = self._peer_edges[peer].sample(self._rng).segment
        if segment.is_complete:
            return
        before = self._saved_flag(segment)
        segment.state += 1
        self._useful += 1
        if segment.is_complete:
            self._completed += 1
        self._update_saved(segment, before)

    # -- the Gillespie loop ----------------------------------------------------------

    def run_until(self, end_time: float) -> None:
        """Advance the process to *end_time* exactly."""
        if end_time < self.now:
            raise ValueError(f"end_time {end_time} is before now {self.now}")
        rng = self._rng
        while True:
            inject_rate = self.n * self.lam / self.s
            gossip_rate = len(self._nonempty) * self.mu
            delete_rate = len(self._edges) * self.gamma
            collect_rate = self.c * self.n
            total = inject_rate + gossip_rate + delete_rate + collect_rate
            if total <= 0:
                break
            gap = rng.expovariate(total)
            if self.now + gap > end_time:
                break
            self.now += gap
            self._advance_integrals(self.now)
            draw = rng.random() * total
            if draw < inject_rate:
                self._op_inject()
            elif draw < inject_rate + gossip_rate:
                self._op_gossip()
            elif draw < inject_rate + gossip_rate + delete_rate:
                self._op_delete()
            else:
                self._op_collect()
        self.now = end_time
        self._advance_integrals(end_time)

    def begin_window(self) -> None:
        """Reset measurement counters at the current time."""
        self._win_start = self.now
        self._advance_integrals(self.now)
        self._occupancy_integral = 0.0
        self._empty_integral = 0.0
        self._saved_integral = 0.0
        self._pulls = 0
        self._useful = 0
        self._completed = 0

    def run(self, warmup: float, duration: float) -> BipartiteReport:
        """Warm up, measure, and report — mirroring CollectionSystem.run."""
        if warmup < 0 or duration <= 0:
            raise ValueError(
                f"need warmup >= 0 and duration > 0, got {warmup}, {duration}"
            )
        self.run_until(self.now + warmup)
        self.begin_window()
        self.run_until(self.now + duration)
        window = self.now - self._win_start
        demand = self.n * self.lam
        throughput = self._useful / window if window > 0 else 0.0
        return BipartiteReport(
            window=window,
            pulls=self._pulls,
            useful_pulls=self._useful,
            normalized_throughput=throughput / demand if demand else 0.0,
            efficiency=self._useful / self._pulls if self._pulls else 0.0,
            mean_occupancy=self._occupancy_integral / window / self.n,
            empty_fraction=self._empty_integral / window / self.n,
            saved_blocks_per_peer=self._saved_integral / window * self.s / self.n,
            segments_completed=self._completed,
        )

    # -- snapshots for distribution-level validation -----------------------------------

    def peer_degree_distribution(self) -> List[float]:
        """Instantaneous z_i vector (fractions, indices 0..B)."""
        counts = [0] * (self.B + 1)
        for degree in self.peer_degree:
            counts[degree] += 1
        return [count / self.n for count in counts]

    def segment_degree_histogram(self) -> Dict[int, int]:
        """Instantaneous X_i histogram."""
        histogram: Dict[int, int] = {}
        for segment in self._segments.values():
            degree = segment.degree
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram

    def collection_matrix(self) -> Dict[int, Dict[int, int]]:
        """Instantaneous M_i^j histogram."""
        matrix: Dict[int, Dict[int, int]] = {}
        for segment in self._segments.values():
            row = matrix.setdefault(segment.degree, {})
            row[segment.state] = row.get(segment.state, 0) + 1
        return matrix

    def consistency_check(self) -> None:
        """Cross-check internal counters; raises AssertionError on drift."""
        total_from_peers = sum(self.peer_degree)  # lint: ok(R4): integer degrees, exact
        if total_from_peers != len(self._edges):
            raise AssertionError(
                f"edge drift: peers {total_from_peers}, edges {len(self._edges)}"
            )
        total_from_segments = sum(  # lint: ok(R4): integer degrees, exact
            segment.degree for segment in self._segments.values()
        )
        if total_from_segments != len(self._edges):
            raise AssertionError(
                f"edge drift: segments {total_from_segments}, "
                f"edges {len(self._edges)}"
            )
        saved_actual = sum(  # lint: ok(R4): counting flags, exact
            1 for segment in self._segments.values() if self._saved_flag(segment)
        )
        if saved_actual != self._saved_count:
            raise AssertionError(
                f"saved drift: counted {self._saved_count}, actual {saved_actual}"
            )
        nonempty_actual = {
            peer for peer in range(self.n) if self.peer_degree[peer] > 0
        }
        if nonempty_actual != set(self._nonempty):
            raise AssertionError("non-empty set drift")
