"""Fluid-limit transients: the ODE model under time-varying demand.

Sec. 3's ODEs are derived for constant λ, but nothing in the derivation
requires it: the injection terms simply pick up λ(t).  This module extends
:class:`repro.analysis.ode.CollectionODE` with a workload-driven arrival
rate and records full trajectories, giving the *fluid-limit* view of the
paper's motivating scenario — a flash crowd washing over the buffer pool —
to set against the finite-N event simulation:

- buffered blocks per peer ``e(t)`` swelling through the burst and
  draining afterwards (the "buffering zone"),
- instantaneous useful-collection rate (the "smoothing factor"),
- the saved-for-future-delivery reserve of Theorem 4 as a function of time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from scipy.integrate import solve_ivp

# numpy 2.x renamed trapz -> trapezoid; support both.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz

from repro.analysis.ode import CollectionODE, ODEConfig
from repro.stats.workload import Workload
from repro.util.validation import require_positive


@dataclass(frozen=True)
class Trajectory:
    """Recorded fluid trajectories on a fixed time grid (all per peer)."""

    times: np.ndarray
    demand: np.ndarray  # lambda(t)
    occupancy: np.ndarray  # e(t): buffered blocks
    empty_fraction: np.ndarray  # z0(t)
    collection_rate: np.ndarray  # useful pulls per peer per unit time
    saved_blocks: np.ndarray  # Theorem 4 reserve: s * sum_{i>=s}(w_i - m_i^s)

    def peak_occupancy(self) -> float:
        """Largest buffered volume reached during the horizon."""
        return float(self.occupancy.max())

    def collected_fraction(self) -> float:
        """Usefully collected blocks / generated blocks over the horizon."""
        generated = float(_trapezoid(self.demand, self.times))
        collected = float(_trapezoid(self.collection_rate, self.times))
        return collected / generated if generated > 0 else 0.0


class TransientCollectionODE(CollectionODE):
    """The coupled (7)+(12) systems with workload-driven λ(t).

    The *arrival_rate* passed to the base class is used for truncation
    sizing only; the dynamics read ``workload.rate(t)``.  Keep the workload
    peak at or below the sizing rate or the truncation may clip mass (the
    constructor enforces this).
    """

    def __init__(
        self,
        workload: Workload,
        gossip_rate: float,
        deletion_rate: float,
        segment_size: int,
        normalized_capacity: float,
        config: Optional[ODEConfig] = None,
    ) -> None:
        peak = require_positive("workload.max_rate", workload.max_rate)
        super().__init__(
            arrival_rate=peak,  # size truncations for the worst case
            gossip_rate=gossip_rate,
            deletion_rate=deletion_rate,
            segment_size=segment_size,
            normalized_capacity=normalized_capacity,
            config=config,
        )
        self.workload = workload

    def rhs(self, t: float, y: np.ndarray) -> np.ndarray:
        # Temporarily swap in the instantaneous rate; the base RHS reads
        # self.lam.  Single-threaded integration makes this safe.
        sized_lam = self.lam
        try:
            self.lam = self.workload.rate(t)
            if self.lam <= 0.0:
                # Degenerate but legal (shutoff): emulate by a vanishing rate
                # so the injection terms cancel without special-casing.
                self.lam = 1e-300
            return super().rhs(t, y)
        finally:
            self.lam = sized_lam

    def simulate(
        self,
        t_end: float,
        n_points: int = 200,
        y0: Optional[np.ndarray] = None,
        rtol: float = 1e-6,
        atol: float = 1e-9,
    ) -> Trajectory:
        """Integrate to *t_end* recording *n_points* evenly spaced samples."""
        require_positive("t_end", t_end)
        if n_points < 2:
            raise ValueError(f"n_points must be >= 2, got {n_points}")
        if y0 is None:
            y0 = self.initial_state()
        times = np.linspace(0.0, t_end, n_points)
        solution = solve_ivp(
            self.rhs,
            (0.0, t_end),
            y0,
            method="RK45",
            t_eval=times,
            rtol=rtol,
            atol=atol,
        )
        if not solution.success:
            raise RuntimeError(f"transient integration failed: {solution.message}")
        return self._record(times, solution.y)

    def _record(self, times: np.ndarray, states: np.ndarray) -> Trajectory:
        s = self.s
        degrees_z = np.arange(self.B + 1, dtype=float)
        degrees_m = np.arange(self.i_max + 1, dtype=float)
        demand: List[float] = []
        occupancy: List[float] = []
        empty: List[float] = []
        collection: List[float] = []
        saved: List[float] = []
        for index, t in enumerate(times):
            y = states[:, index]
            z = y[: self._n_z]
            m_rows = y[self._n_z :].reshape(self.i_max, s + 1)
            m = np.zeros((self.i_max + 1, s + 1))
            m[1:, :] = m_rows
            e = float(degrees_z @ z)
            demand.append(self.workload.rate(t))
            occupancy.append(e)
            empty.append(float(z[0]))
            # useful pull rate per peer: c * P(draw lands on a needed
            # segment) = c * (1 - redundant edge fraction)
            if e > 1e-9:
                redundant_edges = float(degrees_m @ m[:, s])
                collection.append(self.c * (1.0 - redundant_edges / e))
            else:
                collection.append(0.0)
            w = m.sum(axis=1)
            saved.append(s * float((w[s:] - m[s:, s]).sum()))
        return Trajectory(
            times=times,
            demand=np.array(demand),
            occupancy=np.array(occupancy),
            empty_fraction=np.array(empty),
            collection_rate=np.array(collection),
            saved_blocks=np.array(saved),
        )
