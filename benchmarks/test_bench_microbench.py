"""Microbenchmarks of the computational substrates.

Not paper artifacts, but the numbers an adopter asks first: how fast is the
GF(2^8) codec, the incremental decoder, and the event engine itself.  These
use pytest-benchmark's normal multi-round timing (they are cheap).
"""

import numpy as np

from repro.coding import gf256
from repro.coding.linalg import IncrementalDecoder
from repro.coding.rlnc import recode
from repro.coding.block import SegmentDescriptor, make_source_blocks
from repro.core.params import Parameters
from repro.core.system import CollectionSystem
from repro.sim.engine import Simulator


def test_bench_gf256_axpy(benchmark):
    """vec_addmul on a 1 KiB payload — the inner loop of all coding."""
    accumulator = np.zeros(1024, dtype=np.uint8)
    vector = np.arange(1024, dtype=np.uint8)
    benchmark(gf256.vec_addmul, accumulator, vector, 0x53)


def test_bench_recode_segment32(benchmark):
    """Re-encoding one coded block from 32 held blocks of 256 B each."""
    descriptor = SegmentDescriptor(
        segment_id=0, source_peer=0, size=32, injected_at=0.0
    )
    rng = np.random.default_rng(0)
    payloads = rng.integers(0, 256, size=(32, 256), dtype=np.uint8)
    blocks = make_source_blocks(descriptor, payloads)
    benchmark(recode, blocks, rng)


def test_bench_incremental_decode_segment32(benchmark):
    """Full decode of a 32-block segment from random combinations."""
    rng = np.random.default_rng(1)
    size, payload_len = 32, 256
    originals = rng.integers(0, 256, size=(size, payload_len), dtype=np.uint8)
    coded = []
    for _ in range(size + 4):
        coeffs = rng.integers(0, 256, size=size, dtype=np.uint8)
        payload = np.zeros(payload_len, dtype=np.uint8)
        for j in range(size):
            if coeffs[j]:
                gf256.vec_addmul(payload, originals[j], int(coeffs[j]))
        coded.append((coeffs, payload))

    def decode_all():
        decoder = IncrementalDecoder(size)
        for coeffs, payload in coded:
            decoder.add(coeffs, payload)
            if decoder.is_complete:
                break
        return decoder.decode()

    result = benchmark(decode_all)
    assert np.array_equal(result, originals)


def test_bench_event_engine_throughput(benchmark):
    """Raw engine speed: schedule/execute 20k trivial events.

    Uses the handle-free fast path (`schedule_call`) — the scheduling
    flavour the protocol's recurring clocks, TTL expiries, and delivery
    latencies actually ride.
    """

    def run():
        sim = Simulator()
        for index in range(20_000):
            sim.schedule_call(index * 1e-4, lambda: None)
        sim.run_until(10.0)
        return sim.events_processed

    assert benchmark(run) == 20_000


def test_bench_event_engine_probe_installed(benchmark):
    """Engine throughput with a no-op probe armed every 256 events.

    The chaos layer's invariant monitors ride this hook; paired with
    ``test_bench_event_engine_throughput`` (probe off) it bounds the
    monitoring tax on the raw event loop.
    """

    def run():
        sim = Simulator()
        sim.set_probe(lambda: None, every=256)
        for index in range(20_000):
            sim.schedule_call(index * 1e-4, lambda: None)
        sim.run_until(10.0)
        return sim.events_processed

    assert benchmark(run) == 20_000


def _session_params():
    return Parameters(
        n_peers=100,
        arrival_rate=20.0,
        gossip_rate=10.0,
        deletion_rate=1.0,
        normalized_capacity=8.0,
        segment_size=20,
        n_servers=4,
    )


def test_bench_simulation_second(benchmark):
    """One simulated time unit of a 100-peer abstract-mode session."""
    system = CollectionSystem(_session_params(), seed=1)
    system.run_until(5.0)  # reach steady state outside the timer

    state = {"t": 5.0}

    def advance_one_unit():
        state["t"] += 1.0
        system.run_until(state["t"])

    benchmark.pedantic(advance_one_unit, rounds=10, iterations=1)


def test_bench_simulation_second_defended(benchmark):
    """The same simulated second with both server defenses switched on.

    Honest population, so this prices the pure defense tax: every pull
    outcome folds into the EWMA scorer and every capture check consults
    trust.  The adversary-hooks-off cost is ``test_bench_simulation_second``
    itself (the guards ride that path unconditionally); bench_compare
    against the committed baseline bounds it.
    """
    params = Parameters(
        n_peers=100,
        arrival_rate=20.0,
        gossip_rate=10.0,
        deletion_rate=1.0,
        normalized_capacity=8.0,
        segment_size=20,
        n_servers=4,
        pull_scoring=True,
        advert_discounting=True,
    )
    system = CollectionSystem(params, seed=1)
    system.run_until(5.0)

    state = {"t": 5.0}

    def advance_one_unit():
        state["t"] += 1.0
        system.run_until(state["t"])

    benchmark.pedantic(advance_one_unit, rounds=10, iterations=1)
    assert system.metrics.false_quarantines.total == 0


def test_bench_simulation_second_monitored(benchmark):
    """The same simulated second with the full invariant suite sweeping.

    Monitors-on counterpart of ``test_bench_simulation_second``: a
    MonitorSuite at the default cadence (every 256 events) audits block
    conservation, buffer caps, peer tracking, saved-segment accounting,
    rank monotonicity, and event-time sanity while the clock advances.
    """
    from repro.chaos.monitors import MonitorSuite, runtime_monitors

    system = CollectionSystem(_session_params(), seed=1)
    system.run_until(5.0)

    suite = MonitorSuite(
        system, every=256, monitors=runtime_monitors(system)
    )
    suite.install()
    state = {"t": 5.0}

    def advance_one_unit():
        state["t"] += 1.0
        system.run_until(state["t"])

    benchmark.pedantic(advance_one_unit, rounds=10, iterations=1)
    suite.uninstall()
    assert suite.checks_run > 0
