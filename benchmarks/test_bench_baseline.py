"""E-BASE benchmark: Fig. 1(a) vs Fig. 1(b) through a flash crowd.

Push (traditional reporting), oracle pull (the naive remedy), and the
indirect design face the same x5 burst with churn.  Asserts the paper's
motivating claims: push drops the burst permanently; the indirect pool
keeps absorbing during the burst and drains it afterwards; departed peers'
data remains partially recoverable only under the indirect design.
"""

import re

from benchmarks.conftest import run_once
from repro.experiments.baseline import run_baseline_comparison


def test_baseline_flash_crowd_comparison(benchmark, quality):
    result = run_once(benchmark, run_baseline_comparison, quality=quality)
    print()
    print(result.to_table())

    push = result.series["push intake"]
    indirect = result.series["indirect intake"]

    steady, burst, drain1, drain2 = range(4)

    # push is capacity-clipped during the burst (cannot exceed c/lambda_base
    # = 1.5 by construction) and has nothing left to drain afterwards
    assert push[burst] < 1.65
    assert push[drain1] < 1.15
    assert push[drain2] < 1.15

    # the indirect pool keeps the servers busy above the base rate through
    # the first drain phase — the burst was buffered, not lost
    assert indirect[drain1] > 0.85
    assert indirect[burst] > 1.0

    # the push note must report a substantial permanent drop
    drop_note = next(note for note in result.notes if "dropped" in note)
    dropped = float(re.search(r"dropped ([0-9.]+)%", drop_note).group(1))
    assert dropped > 15.0

    # only the indirect design retains recoverable data of departed peers
    recover_note = next(
        note for note in result.notes if "still recoverable" in note
    )
    pull_rec, indirect_rec = [
        float(m) for m in re.findall(r"([0-9.]+)%", recover_note)
    ]
    assert pull_rec == 0.0
    assert indirect_rec >= 0.0
