"""Runner task-throughput microbenchmarks.

How much does the sweep orchestrator itself cost?  The synthetic grid's
cells are near-free arithmetic, so these numbers isolate the runner's
overhead — worker dispatch, pipe round-trips, journal writes, merge — from
simulation time.  ``scripts/bench_compare.py`` diffs them against
``BENCH_baseline.json`` like every other benchmark.
"""

import itertools

from repro.experiments.base import SimBudget
from repro.runner import RunJournal, RunSpec, execute_run, synthetic_options

#: The synthetic cells ignore the budget; any resolved one will do.
_BUDGET = SimBudget(n_peers=10, warmup=0.0, duration=1.0, seeds=(1,),
                    n_servers=1)
_N_TASKS = 32

_run_counter = itertools.count()


def _spec() -> RunSpec:
    return RunSpec.create(
        "synthetic-grid", "fast", _BUDGET, synthetic_options(_N_TASKS)
    )


def test_bench_runner_serial_grid(benchmark, tmp_path):
    """Task-grid overhead alone: build + run_serial, no pool, no journal."""
    spec = _spec()

    def run_serial():
        return spec.build_plan().run_serial()

    result = benchmark.pedantic(run_serial, rounds=5, iterations=1)
    assert len(result.x_values) == _N_TASKS


def test_bench_runner_pool_throughput(benchmark, tmp_path):
    """Full orchestration of 32 trivial cells on a 2-worker pool.

    Dominated by worker spawn + per-task pipe round-trips + atomic journal
    writes — the fixed cost every sharded sweep pays on top of simulation.
    """
    spec = _spec()

    def run_pool():
        run_id = f"bench-{next(_run_counter):04d}"
        return execute_run(
            spec, workers=2, runs_dir=tmp_path, run_id=run_id
        )

    outcome = benchmark.pedantic(run_pool, rounds=3, iterations=1)
    assert outcome.complete and outcome.total_tasks == _N_TASKS


def test_bench_runner_journal_record(benchmark, tmp_path):
    """Atomic task-record writes: the durability cost per completed cell."""
    spec = _spec()
    task_ids = [f"cell={i:04d}" for i in range(_N_TASKS)]
    journal = RunJournal.create(tmp_path / "journal", spec, task_ids)
    payload = {"index": 3, "value": 19.0}
    ticket = itertools.count()

    def record_one():
        journal.record_task(
            next(ticket) % 100000, "cell=0003", payload,
            attempts=1, elapsed=0.01,
        )

    benchmark(record_one)
