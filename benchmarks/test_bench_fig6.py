"""E-FIG6 benchmark: regenerate Fig. 6 (data saved per peer vs s).

Asserts the figure's message: the saved reserve decreases with s (more of
the constant buffered pool is already reconstructed as throughput climbs)
but remains strictly positive at every segment size — the guaranteed
delayed-delivery buffer.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig6 import run_fig6


def test_fig6_saved_data_vs_segment_size(benchmark, quality):
    result = run_once(benchmark, run_fig6, quality=quality)
    print()
    print(result.to_table())

    for label, values in result.series.items():
        # monotone (allowing small simulation noise) decrease with s
        tolerance = 0.0 if label.startswith("analytic") else 0.6
        for earlier, later in zip(values, values[1:]):
            assert later <= earlier + tolerance, (label, values)
        # strictly positive reserve at every s
        assert all(v > 0 for v in values), (label, values)
        # the reserve shrinks substantially across the sweep
        assert values[-1] < 0.5 * values[0], (label, values)

    # larger capacity reconstructs more: saved(c=12) < saved(c=4) pointwise
    small_c = result.series["analytic c=4"]
    large_c = result.series["analytic c=12"]
    assert all(b < a for a, b in zip(small_c, large_c))
