"""E-FIG5 benchmark: regenerate Fig. 5 (block delivery delay vs s).

Asserts the paper's hump shape on the analytic (Theorem 3) curve — delay
peaks at a small coded segment size and decays for large s — and that the
simulated delay decays over the coded range as well.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig5 import run_fig5


def test_fig5_block_delay_vs_segment_size(benchmark, quality):
    result = run_once(benchmark, run_fig5, quality=quality)
    print()
    print(result.to_table())

    s_values = result.x_values
    for label, values in result.series.items():
        if label.startswith("analytic"):
            coded = {
                s: v for s, v in zip(s_values, values) if s >= 2
            }
            peak_s = max(coded, key=coded.get)
            # the paper puts the peak around s=5; allow the coded small range
            assert peak_s <= 10, f"{label}: analytic peak at s={peak_s}"
            # decay after the peak
            tail = [v for s, v in coded.items() if s >= peak_s]
            assert tail[-1] < tail[0], f"{label}: no decay after the peak"
        elif label.startswith("sim"):
            # Delay is measured on segments that actually complete; in the
            # scarcest-capacity corner (small c, large s) completions can be
            # absent from the window, leaving NaN points — skip those.
            import math

            by_s = {
                s: v
                for s, v in zip(s_values, values)
                if v is not None and not math.isnan(v)
            }
            coded = {s: v for s, v in by_s.items() if s >= 5}
            if len(coded) >= 2:
                largest = max(coded)
                smallest = min(coded)
                assert coded[largest] < coded[smallest], (
                    f"{label}: simulated delay should decay for large s"
                )
            assert all(v > 0 for v in by_s.values())
