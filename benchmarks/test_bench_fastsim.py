"""Fast-engine benchmarks: events/sec vs the event engine, scale, RSS.

The acceptance bar of the fast path is quantitative: at N=10^4 the
tau-leap engine must turn over at least 20x the events/sec of the
event-exact engine on the same abstract-mode workload.  The speedup and
both absolute rates are recorded in ``extra_info`` so the committed
``BENCH_baseline.json`` documents them; peak RSS rides along the same
way (memory is the other axis the million-peer path must hold flat).
"""

import resource
import time

from benchmarks.conftest import run_once
from repro.core.params import ENGINE_FAST, Parameters
from repro.core.system import CollectionSystem
from repro.fastsim import FastCollectionSystem

#: Fig. 3 operating point (middle capacity curve, delay-peak segment size).
_RATES = dict(
    arrival_rate=20.0,
    gossip_rate=10.0,
    deletion_rate=1.0,
    normalized_capacity=8.0,
    segment_size=5,
    n_servers=4,
)

#: The acceptance-criterion floor: fast-engine events/sec over
#: event-engine events/sec at N=10^4.
MIN_SPEEDUP = 20.0


def _params(n_peers, engine="event", tau=0.05):
    extra = dict(engine=ENGINE_FAST, tau=tau) if engine == "fast" else {}
    return Parameters(n_peers=n_peers, **_RATES, **extra)


def _peak_rss_kb():
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _events_per_second(run, *args):
    started = time.perf_counter()
    events = run(*args)
    elapsed = time.perf_counter() - started
    return events / elapsed if elapsed > 0 else 0.0


def _run_fast(n_peers, tau=0.05, warmup=1.0, duration=3.0):
    system = FastCollectionSystem(_params(n_peers, "fast", tau), seed=1)
    report = system.run(warmup, duration)
    assert report.efficiency > 0.0
    return report.engine_events_fired


def _run_event(n_peers, warmup=1.0, duration=3.0):
    system = CollectionSystem(_params(n_peers), seed=1)
    report = system.run(warmup, duration)
    assert report.efficiency > 0.0
    return report.engine_events_fired


def test_bench_fastsim_session_10k(benchmark):
    """One N=10^4 fast-engine session (tau=0.05), the speedup numerator."""
    events = run_once(benchmark, _run_fast, 10_000)
    rate = events / benchmark.stats.stats.total
    benchmark.extra_info["events"] = int(events)
    benchmark.extra_info["events_per_second"] = round(rate)
    benchmark.extra_info["peak_rss_kb"] = _peak_rss_kb()
    print(f"\nfast engine N=1e4: {rate / 1e6:.2f}M events/s")


def test_bench_fastsim_session_100k(benchmark):
    """One N=10^5 fast-engine session — vectorization amortizes with N."""
    events = run_once(benchmark, _run_fast, 100_000)
    rate = events / benchmark.stats.stats.total
    benchmark.extra_info["events"] = int(events)
    benchmark.extra_info["events_per_second"] = round(rate)
    benchmark.extra_info["peak_rss_kb"] = _peak_rss_kb()
    print(f"\nfast engine N=1e5: {rate / 1e6:.2f}M events/s")


def test_bench_fastsim_speedup_vs_event_engine(benchmark):
    """Acceptance criterion: fast events/sec >= 20x event-exact at N=10^4.

    The event engine runs a shorter horizon (it is the slow side by two
    orders of magnitude); events/sec is horizon-independent in steady
    state, which is what the ratio compares.
    """
    fast_rate = _events_per_second(_run_fast, 10_000)
    event_rate = run_once(
        benchmark,
        lambda: _events_per_second(_run_event, 10_000, 0.5, 1.0),
    )
    speedup = fast_rate / event_rate
    benchmark.extra_info["fast_events_per_second"] = round(fast_rate)
    benchmark.extra_info["event_events_per_second"] = round(event_rate)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["peak_rss_kb"] = _peak_rss_kb()
    print(
        f"\nN=1e4 events/s: fast {fast_rate / 1e6:.2f}M vs "
        f"event {event_rate / 1e3:.0f}k -> {speedup:.0f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fast engine is only {speedup:.1f}x the event engine "
        f"(acceptance floor is {MIN_SPEEDUP:.0f}x)"
    )
