"""E-T1 benchmark: validate Theorem 1 (storage overhead) three ways.

Closed form vs ODE steady state vs event simulation, across segment sizes.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig3 import DELETION_RATE, GOSSIP_RATE
from repro.experiments.theorem1 import run_theorem1


def test_theorem1_storage_overhead(benchmark, quality):
    result = run_once(benchmark, run_theorem1, quality=quality)
    print()
    print(result.to_table())

    closed_rho = result.series["closed-form rho"][0]
    bound = GOSSIP_RATE / DELETION_RATE

    for ode_rho in result.series["ODE rho"]:
        assert abs(ode_rho - closed_rho) / closed_rho < 0.05
    for sim_rho in result.series["sim rho"]:
        # "regardless of the value of s": occupancy stays near the closed form
        assert abs(sim_rho - closed_rho) / closed_rho < 0.12
    for overhead in result.series["sim overhead"]:
        # Theorem 1's bound overhead < mu/gamma (plus simulation noise)
        assert overhead < bound * 1.08
    for z0 in result.series["sim z0"]:
        assert 0.0 <= z0 < 0.05  # lambda/gamma = 20: empty peers are rare
