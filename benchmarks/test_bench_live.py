"""Microbenchmarks of the live runtime's wire path.

The numbers a deployer asks before sizing a swarm: how fast is the frame
codec (sans-IO), how many framed request/response round trips per second
does one loopback TCP connection sustain, and how fast does a collector
decode a segment whose blocks arrive over a real socket.  Codec benches
use normal multi-round timing; the socket benches batch many operations
per timed call so loop startup never dominates.
"""

import asyncio

import numpy as np

from repro.coding.block import SegmentDescriptor, make_source_blocks
from repro.coding.rlnc import SegmentDecoder, recode
from repro.live import ports, wire
from repro.live.framing import FrameDecoder, encode_frame
from repro.live.transport import FramedConnection

#: Socket benches amortize the event-loop entry over this many operations.
BATCH = 200


def test_bench_frame_encode_decode(benchmark):
    """Sans-IO frames/s: encode + decode one 1 KiB-payload frame."""
    header = {"type": "block", "segment": {"segment_id": 7, "size": 32}}
    payload = bytes(range(256)) * 4

    def round_trip():
        blob = encode_frame(header, payload)
        return FrameDecoder().feed(blob)[0]

    frame = benchmark(round_trip)
    assert frame.payload == payload


def test_bench_block_wire_round_trip(benchmark):
    """CodedBlock -> frame pair -> CodedBlock (s=32, 256 B rows)."""
    descriptor = SegmentDescriptor(
        segment_id=1, source_peer=0, size=32, injected_at=0.0
    )
    rng = np.random.default_rng(0)
    payloads = rng.integers(0, 256, size=(32, 256), dtype=np.uint8)
    block = make_source_blocks(descriptor, payloads)[0]
    digest = wire.payload_digest(payloads.tobytes())

    def round_trip():
        header, data = wire.block_to_wire(wire.MSG_BLOCK, block, digest)
        return wire.block_from_wire(header, data)

    back = benchmark(round_trip)
    assert np.array_equal(back.payload, block.payload)


def test_bench_loopback_request_response(benchmark):
    """Framed request/response round trips over one loopback TCP socket."""

    async def echo(reader, writer):
        conn = FramedConnection(reader, writer)
        while True:
            frame = await conn.read()
            if frame is None:
                break
            await conn.send({"type": "echo"}, frame.payload)
        await conn.close()

    loop = asyncio.new_event_loop()
    try:
        server, port = loop.run_until_complete(ports.start_server(echo))
        conn = loop.run_until_complete(
            FramedConnection.open("127.0.0.1", port)
        )
        payload = bytes(64)

        async def batch():
            for _ in range(BATCH):
                await conn.request({"type": "ping"}, payload)
            return BATCH

        def timed():
            return loop.run_until_complete(batch())

        assert benchmark(timed) == BATCH
        loop.run_until_complete(conn.close())
        server.close()
        loop.run_until_complete(server.wait_closed())
    finally:
        loop.close()


def test_bench_decode_on_wire(benchmark):
    """Collector-side decode throughput with blocks arriving by socket.

    One 32-block segment (256 B rows) is recoded server-side per request,
    shipped as PULL-BLOCK frames, and fed to a fresh SegmentDecoder until
    complete — the live pull path minus the protocol bookkeeping.
    """
    descriptor = SegmentDescriptor(
        segment_id=9, source_peer=0, size=32, injected_at=0.0
    )
    rng = np.random.default_rng(3)
    payloads = rng.integers(0, 256, size=(32, 256), dtype=np.uint8)
    blocks = make_source_blocks(descriptor, payloads)
    digest = wire.payload_digest(payloads.tobytes())

    async def serve(reader, writer):
        conn = FramedConnection(reader, writer)
        while True:
            frame = await conn.read()
            if frame is None:
                break
            coded = recode(blocks, rng)
            header, data = wire.block_to_wire(
                wire.MSG_PULL_BLOCK, coded, digest
            )
            await conn.send(header, data)
        await conn.close()

    loop = asyncio.new_event_loop()
    try:
        server, port = loop.run_until_complete(ports.start_server(serve))
        conn = loop.run_until_complete(
            FramedConnection.open("127.0.0.1", port)
        )

        async def decode_segment():
            decoder = SegmentDecoder(descriptor)
            pulls = 0
            while not decoder.is_complete:
                reply = await conn.request({"type": wire.MSG_PULL})
                block = wire.block_from_wire(reply.header, reply.payload)
                decoder.offer(block, 0.0)
                pulls += 1
            rows = decoder.decode()
            assert wire.payload_digest(rows.tobytes()) == digest
            return pulls

        def timed():
            return loop.run_until_complete(decode_segment())

        pulls = benchmark(timed)
        assert pulls >= 32
        loop.run_until_complete(conn.close())
        server.close()
        loop.run_until_complete(server.wait_closed())
    finally:
        loop.close()
