"""E-TRANS benchmark: flash-crowd buffering zone and smoothing factor.

Fluid ODE vs event simulation through the same burst; asserts the paper's
abstract-level claims quantitatively.
"""

from benchmarks.conftest import run_once
from repro.experiments.transient import BURST_END, BURST_START, run_transient


def test_transient_flash_crowd(benchmark, quality):
    result = run_once(benchmark, run_transient, quality=quality)
    print()
    print(result.to_table())

    times = result.x_values
    demand = dict(zip(times, result.series["demand"]))
    for label in ("fluid occupancy", "sim occupancy"):
        occupancy = dict(zip(times, result.series[label]))
        pre = [v for t, v in occupancy.items() if t < BURST_START]
        burst_and_after = [
            v for t, v in occupancy.items() if BURST_START <= t < BURST_END + 5
        ]
        late = [v for t, v in occupancy.items() if t > BURST_END + 10]
        # buffering zone: occupancy swells well above its pre-burst level...
        assert max(burst_and_after) > 1.3 * max(pre), label
        # ...and drains back down once the backlog clears
        assert late[-1] < 1.2 * max(pre), label

    # smoothing: intake varies much less than demand
    demand_swing = max(demand.values()) / min(demand.values())
    for label in ("fluid intake", "sim intake"):
        intake = [v for t, v in zip(times, result.series[label]) if t > 4]
        intake_swing = max(intake) / min(intake)
        assert intake_swing < demand_swing / 2, label

    # fluid and simulation agree pointwise once past the earliest transient
    for t, fluid, sim in zip(
        times, result.series["fluid occupancy"], result.series["sim occupancy"]
    ):
        if t > BURST_END + 5:
            assert abs(fluid - sim) / fluid < 0.15, (t, fluid, sim)
