"""E-FIG4 benchmark: regenerate Fig. 4 (throughput vs mu under churn).

Asserts the figure's two-regime message: churn + heavy coding hurts when
server capacity is ample (c = lambda) and does not when capacity is scarce
(c << lambda), where buffering/redundancy still pays.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig4 import run_fig4


def test_fig4_throughput_vs_mu_under_churn(benchmark, quality):
    result = run_once(benchmark, run_fig4, quality=quality)
    print()
    print(result.to_table())

    def mean(label):
        return sum(result.series[label]) / len(result.series[label])

    # ample capacity (c=8=lambda): churn degrades the heavily coded system
    assert mean("c=8 s=30 churn") < mean("c=8 s=30 static") - 0.02

    # scarce capacity (c=2): coding helps, and churn does not erase the gain
    assert mean("c=2 s=30 static") > mean("c=2 s=1 static") + 0.02
    assert mean("c=2 s=30 churn") > mean("c=2 s=1 churn") + 0.02

    # under scarce capacity churn's penalty on the coded system is mild
    degradation = mean("c=2 s=30 static") - mean("c=2 s=30 churn")
    assert degradation < 0.05

    # sanity: every curve lies within (0, capacity]
    for label, values in result.series.items():
        cap = 1.0 if "c=8" in label else 0.25
        for value in values:
            assert 0.0 < value <= cap * 1.08 + 0.02, (label, value)
