"""Ablation benchmarks over the design choices DESIGN.md calls out.

E-ABL-TTL, E-ABL-BUF, E-ABL-SELECT, E-ABL-CODE — each prints its sweep and
asserts the expected directional effect.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablations import (
    run_buffer_ablation,
    run_coding_ablation,
    run_scheduler_ablation,
    run_selection_ablation,
    run_ttl_ablation,
)


def test_ablation_ttl(benchmark, quality):
    result = run_once(benchmark, run_ttl_ablation, quality=quality)
    print()
    print(result.to_table())
    occupancy = result.series["occupancy rho"]
    saved = result.series["saved blocks/peer"]
    # occupancy ~ (mu + lambda)/gamma: strictly decreasing in gamma
    assert occupancy == sorted(occupancy, reverse=True)
    # the delayed-delivery reserve shrinks as blocks die faster
    assert saved == sorted(saved, reverse=True)
    # coarse magnitude check at the ends of the sweep
    gammas = result.x_values
    expected_first = 18.0 / gammas[0]
    assert abs(occupancy[0] - expected_first) / expected_first < 0.2


def test_ablation_buffer_cap(benchmark, quality):
    result = run_once(benchmark, run_buffer_ablation, quality=quality)
    print()
    print(result.to_table())
    throughput = result.series["normalized throughput"]
    blocked = result.series["blocked injections"]
    # throughput recovers as B clears the natural occupancy (~18)
    assert throughput[-1] > throughput[0] * 1.5
    # blocking collapses to near zero once B is ample
    assert blocked[0] > 50 * max(blocked[-1], 1)
    # occupancy saturates near (mu + lambda)/gamma for large B
    assert abs(result.series["occupancy rho"][-1] - 18.0) < 3.0


def test_ablation_selection_rule(benchmark, quality):
    result = run_once(benchmark, run_selection_ablation, quality=quality)
    print()
    print(result.to_table())
    prop = result.series["proportional throughput"]
    unif = result.series["uniform throughput"]
    by_s = dict(zip(result.x_values, zip(prop, unif)))
    # at s=1 the two rules coincide (a peer's blocks of a segment = 1 draw)
    p1, u1 = by_s[1.0]
    assert abs(p1 - u1) < 0.03
    # at large s the uniform (literal-protocol) rule pays a visible penalty
    p_large, u_large = by_s[max(by_s)]
    assert u_large < p_large - 0.03
    # but uniform concentrates pulls: its goodput is at least as high
    prop_good = dict(zip(result.x_values, result.series["proportional goodput"]))
    unif_good = dict(zip(result.x_values, result.series["uniform goodput"]))
    s_max = max(by_s)
    assert unif_good[s_max] >= prop_good[s_max] * 0.9


def test_ablation_server_scheduling(benchmark, quality):
    result = run_once(benchmark, run_scheduler_ablation, quality=quality)
    print()
    print(result.to_table())
    policies = [note.split(": ")[1] for note in result.notes if note.startswith("policy")]
    throughput = dict(zip(policies, result.series["throughput"]))
    goodput = dict(zip(policies, result.series["goodput"]))
    efficiency = dict(zip(policies, result.series["efficiency"]))
    # all policies run near the capacity line on the paper's metric
    for policy in policies:
        assert throughput[policy] > 0.35
    # avoiding redundant pulls pushes efficiency to ~1
    assert efficiency["avoid-redundant"] > efficiency["random"]
    assert efficiency["avoid-redundant"] > 0.99
    # the headline: greedy completion multiplies reconstructed-data goodput
    assert goodput["greedy-completion"] > 3.0 * goodput["random"]


def test_ablation_overlay_topology(benchmark, quality):
    from repro.experiments.ablations import run_topology_ablation

    result = run_once(benchmark, run_topology_ablation, quality=quality)
    print()
    print(result.to_table())
    throughput = dict(zip(result.x_values, result.series["normalized throughput"]))
    complete_graph = throughput[0.0]
    # the headline finding: mean-field robustness down to very sparse overlays
    for degree, value in throughput.items():
        assert abs(value - complete_graph) / complete_graph < 0.08, (
            degree,
            value,
            complete_graph,
        )


def test_ablation_real_rlnc_vs_abstract(benchmark, quality):
    result = run_once(benchmark, run_coding_ablation, quality=quality)
    print()
    print(result.to_table())
    abstract = result.series["abstract efficiency"]
    rlnc = result.series["rlnc efficiency"]
    for a, r in zip(abstract, rlnc):
        # real coding can only be less efficient than the idealization...
        assert r <= a + 0.02
        # ...but must stay in the same regime (the idealization is usable)
        assert r > 0.5 * a
    # throughput ordering follows efficiency
    for a, r in zip(
        result.series["abstract throughput"], result.series["rlnc throughput"]
    ):
        assert r <= a + 0.02
