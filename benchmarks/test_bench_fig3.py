"""E-FIG3 benchmark: regenerate Fig. 3 (throughput vs segment size).

Prints the analytic + simulated series per capacity, and asserts the
paper's qualitative shape so a regression that breaks the reproduction
fails loudly rather than producing a quietly wrong table.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig3 import ARRIVAL_RATE, run_fig3


def test_fig3_throughput_vs_segment_size(benchmark, quality):
    result = run_once(benchmark, run_fig3, quality=quality)
    print()
    print(result.to_table())

    capacities = sorted(
        float(label.split("=")[1])
        for label in result.series
        if label.startswith("analytic")
    )
    for c in capacities:
        analytic = result.series[f"analytic c={c:g}"]
        simulated = result.series[f"sim c={c:g}"]
        capacity_line = min(c / ARRIVAL_RATE, 1.0)

        # shape: throughput rises with s...
        assert analytic[-1] > analytic[0], f"analytic curve flat for c={c}"
        assert simulated[-1] > simulated[0], f"sim curve flat for c={c}"
        # ...toward (but never above) the capacity line
        assert analytic[-1] <= capacity_line + 1e-6
        assert analytic[-1] > 0.95 * capacity_line
        assert simulated[-1] <= capacity_line * 1.05
        assert simulated[-1] > 0.9 * capacity_line
        # analytic and simulation agree pointwise
        for a, s in zip(analytic, simulated):
            assert abs(a - s) < 0.1 * capacity_line + 0.02

    # the relative gap to capacity at small s is widest for the largest c
    gaps = [
        1.0 - result.series[f"analytic c={c:g}"][0] / min(c / ARRIVAL_RATE, 1.0)
        for c in capacities
    ]
    assert gaps == sorted(gaps), "capacity gap should widen with c"
