"""Microbenchmarks of the collector's crash-recovery path.

What a deployer asks before enabling checkpointing: how much does one
periodic journal write cost (the per-interval tax while healthy), how
fast does a restarted server get its decode state back (the downtime
term the supervised restart pays on top of process spawn), and what the
no-checkpoint configuration pays (nothing — the guard is one attribute
test, benchmarked to keep it honest).

Shape: 32 in-flight decoders of s=16 segments with 64-byte rows — a
mid-size collection window's worth of accumulated rank.
"""

import asyncio
import random

import numpy as np

from repro.coding.block import SegmentDescriptor
from repro.coding.rlnc import SegmentDecoder, encode_from_source
from repro.core.params import Parameters
from repro.live.checkpoint import (
    ServerCheckpoint,
    load_checkpoint,
    write_checkpoint,
)
from repro.live.server import LiveLoggingServer

N_DECODERS = 32
SEGMENT_SIZE = 16
PAYLOAD_BYTES = 64


def _mid_window_state(rng):
    """A checkpoint with every decoder one block short of completion."""
    decoders = []
    sources = []
    total_rank = 0
    for index in range(N_DECODERS):
        segment = SegmentDescriptor(
            segment_id=index,
            source_peer=index % 8,
            size=SEGMENT_SIZE,
            injected_at=0.5,
            generation=0,
        )
        rows = np.array(
            [
                [rng.randrange(256) for _ in range(PAYLOAD_BYTES)]
                for _ in range(SEGMENT_SIZE)
            ],
            dtype=np.uint8,
        )
        decoder = SegmentDecoder(segment)
        while decoder.rank < SEGMENT_SIZE - 1:
            decoder.offer(encode_from_source(segment, rows, rng), 1.0)
        total_rank += decoder.rank
        decoders.append(decoder.snapshot())
        sources.append((segment, rows))
    state = ServerCheckpoint(
        seed=1,
        restarts=0,
        time_scale=1.0,
        epoch=100.0,
        marked_at=2.0,
        next_slot=64,
        written_at=5.0,
        completed=(),
        digests={},
        counters={"blocks_received": N_DECODERS * (SEGMENT_SIZE - 1)},
        delay_samples=(),
        servers_down={
            "value": 0.0,
            "last_time": 5.0,
            "integral": 0.0,
            "window_start": 2.0,
        },
        total_rank=total_rank,
        decoders=tuple(decoders),
    )
    return state, sources


def test_bench_checkpoint_write(benchmark, tmp_path):
    """One periodic journal write (32 decoders, s=16, 64 B rows)."""
    state, _ = _mid_window_state(random.Random(1))
    path = tmp_path / "server.ckpt"
    benchmark(write_checkpoint, path, state)
    assert path.exists()


def test_bench_checkpoint_reload(benchmark, tmp_path):
    """Parse + validate one journal (the restart's first disk read)."""
    state, _ = _mid_window_state(random.Random(2))
    path = tmp_path / "server.ckpt"
    write_checkpoint(path, state)
    restored = benchmark(load_checkpoint, path)
    assert restored.total_rank == state.total_rank


def test_bench_restart_to_first_block(benchmark, tmp_path):
    """Journal -> working decoder pool -> first post-restart block decoded.

    The in-memory critical path of a supervised restart (process spawn
    and TCP re-registration excluded): reload the journal, rebuild every
    ``SegmentDecoder``, and prove the pool is live by offering the one
    block that completes the first segment.
    """
    rng = random.Random(3)
    state, sources = _mid_window_state(rng)
    path = tmp_path / "server.ckpt"
    write_checkpoint(path, state)
    segment, rows = sources[0]
    closing_block = encode_from_source(segment, rows, rng, created_at=6.0)

    def restart():
        restored = load_checkpoint(path)
        pool = {
            snap.segment.segment_id: SegmentDecoder.from_snapshot(snap)
            for snap in restored.decoders
        }
        first = pool[segment.segment_id]
        first.offer(closing_block, 7.0)
        return first

    first = benchmark(restart)
    assert first.is_complete
    np.testing.assert_array_equal(first.decode(), rows)


def test_bench_no_checkpoint_path_is_free(benchmark):
    """``write_checkpoint_now`` without a configured path: one guard test.

    The healthy-path neutrality claim — a server run without
    ``--checkpoint`` must pay nothing for the feature existing.
    """
    params = Parameters(
        n_peers=8,
        arrival_rate=0.5,
        gossip_rate=2.0,
        deletion_rate=0.25,
        normalized_capacity=1.0,
        segment_size=2,
        n_servers=2,
        mode="rlnc",
        payload_bytes=32,
    )

    async def build():
        return LiveLoggingServer(params, seed=1)

    server = asyncio.new_event_loop().run_until_complete(build())

    def noop_write():
        for _ in range(1000):
            server.write_checkpoint_now()

    benchmark(noop_write)
    assert server.checkpoint_writes == 0
