"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts (a
figure series or a theorem validation), times the regeneration via
pytest-benchmark, and *prints the same rows the paper plots* so the log is
the reproduction record.

Environment knobs:

- ``REPRO_BENCH_QUALITY`` — ``fast`` (default; minutes) or ``full``
  (paper-scale; tens of minutes).  The printed tables in EXPERIMENTS.md
  come from a ``full`` run.
"""

import os

import pytest

from repro.experiments.base import QUALITY_FAST, VALID_QUALITIES


@pytest.fixture(scope="session")
def quality() -> str:
    value = os.environ.get("REPRO_BENCH_QUALITY", QUALITY_FAST)
    if value not in VALID_QUALITIES:
        raise ValueError(
            f"REPRO_BENCH_QUALITY must be one of {VALID_QUALITIES}, got {value!r}"
        )
    return value


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer.

    Simulation experiments take seconds to minutes; pedantic mode with one
    round avoids pytest-benchmark's default multi-round calibration reruns.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
