"""E-ROBUST benchmark: graceful degradation under injected faults.

Prints the per-channel delivery-ratio and delay-inflation curves against
the fault-free baseline, and asserts the degradation *shape* so a
regression in the fault machinery (e.g. pollution silently corrupting a
decode, or outages not pausing the pull clocks) fails loudly.
"""

import math

from benchmarks.conftest import run_once
from repro.experiments.robustness import CHANNELS, run_robustness


def test_robustness_degradation_curves(benchmark, quality):
    result = run_once(benchmark, run_robustness, quality=quality)
    print()
    print(result.to_table())

    for channel in CHANNELS:
        delivery = result.series[f"delivery ratio: {channel}"]
        # severity 0 is the shared baseline: exactly no degradation
        assert delivery[0] == 1.0, channel
        assert all(not math.isnan(v) for v in delivery), channel
        assert all(0.0 <= v <= 1.2 for v in delivery), channel

    # link loss starves the protocol monotonically in severity
    loss = result.series["delivery ratio: loss"]
    assert all(a >= b for a, b in zip(loss, loss[1:])), loss
    assert loss[-1] < 0.6 * loss[0]

    # pollution wastes bandwidth: strictly degraded at the top severity
    pollution = result.series["delivery ratio: pollution"]
    assert pollution[-1] < 0.9

    # correlated bursts are the fault coding absorbs best: mild degradation
    bursts = result.series["delivery ratio: bursts"]
    assert min(bursts) > 0.7

    # the RLNC audit must report zero corrupted decodes and real rejections
    audit = next(n for n in result.notes if "rlnc pollution audit" in n)
    assert "0 corrupted decodes" in audit
    assert not audit.startswith("rlnc pollution audit: 0 ")
