#!/usr/bin/env python3
"""Flash crowd: why average-provisioned push reporting melts down.

Reproduces the paper's Sec. 1 motivation as a runnable scenario: a x5 burst
of statistics generation hits logging servers that were provisioned for the
*average* load.  Three architectures face the same workload:

- push  — traditional periodic reporting (Fig. 1a): overload is dropped;
- pull  — servers proactively pull pending blocks from peers;
- indirect — the paper's design (Fig. 1b): RLNC gossip buffering + pulls.

The script prints per-phase intake and the post-run accounting, showing the
burst being absorbed by the decentralized buffer pool and drained after the
peak — the "buffering zone and smoothing factor" of the abstract.

Run:  python examples/flash_crowd.py
"""

from repro import DirectCollectionSystem, FlashCrowdWorkload, Parameters
from repro.core.push import PushCollectionSystem
from repro.core.system import CollectionSystem

N_PEERS = 150
BASE_RATE = 4.0
BURST_MULTIPLIER = 5.0
PHASES = [
    ("steady ", 10.0),
    ("burst  ", 5.0),
    ("drain-1", 10.0),
    ("drain-2", 15.0),
]

PARAMS = Parameters(
    n_peers=N_PEERS,
    arrival_rate=BASE_RATE,
    gossip_rate=10.0,
    deletion_rate=0.5,
    normalized_capacity=6.0,  # covers the time-average demand (6), not the peak (20)
    segment_size=20,
    n_servers=4,
    mean_lifetime=6.0,  # peers churn with mean lifetime 6
)


def make_workload() -> FlashCrowdWorkload:
    return FlashCrowdWorkload(
        base_rate=BASE_RATE, burst_start=10.0, burst_end=15.0,
        multiplier=BURST_MULTIPLIER,
    )


def main() -> None:
    demand = N_PEERS * BASE_RATE
    peak = demand * BURST_MULTIPLIER
    capacity = PARAMS.aggregate_capacity
    print(
        f"base demand {demand:.0f} blk/u, burst peak {peak:.0f} blk/u, "
        f"server capacity {capacity:.0f} blk/u"
    )
    print(
        f"peak-to-average over the session: "
        f"{make_workload().peak_to_average(0.0, 40.0):.2f}x"
    )
    print()

    indirect = CollectionSystem(PARAMS, seed=3, workload=make_workload())
    pull = DirectCollectionSystem(PARAMS, seed=3, workload=make_workload())
    push = PushCollectionSystem(PARAMS, seed=3, workload=make_workload())

    print(f"{'phase':8s} {'push':>8s} {'pull':>8s} {'indirect':>9s}   (intake / base demand)")
    print("-" * 46)
    for label, duration in PHASES:
        rates = []
        for system in (push, pull, indirect):
            report = system.run_phase(duration)
            rates.append(report.throughput / demand)
        print(
            f"{label:8s} {rates[0]:8.3f} {rates[1]:8.3f} {rates[2]:9.3f}"
        )

    print()
    print(f"push: dropped {push.loss_fraction():.1%} of all uploads at the servers")
    pm_pull = pull.postmortem()
    pm_ind = indirect.postmortem()
    print(
        "departed peers' data ever collected: "
        f"pull {pm_pull.departed.collected_fraction:.1%}, "
        f"indirect {pm_ind.departed.collected_fraction:.1%}"
    )
    print(
        "data still recoverable from the network buffer pool: "
        f"pull {pm_pull.departed.recoverable + pm_pull.live.recoverable}, "
        f"indirect {pm_ind.departed.recoverable + pm_ind.live.recoverable} blocks"
    )
    print()
    print(
        "reading: push saturates during the burst and loses the excess\n"
        "permanently; the indirect pool keeps absorbing (gossip is not\n"
        "capacity-limited by the servers) and the servers continue draining\n"
        "it through the post-burst phases — delay traded for loss."
    )


if __name__ == "__main__":
    main()
