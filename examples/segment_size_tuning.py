#!/usr/bin/env python3
"""Operator guide: choosing the segment size s.

The paper's closing recommendation ("a segment size between 20 and 40 is
preferred") balances three curves that this example regenerates with the
analytical model and spot-checks with simulation:

- throughput rises with s toward the capacity line (Fig. 3),
- block delivery delay peaks at small coded s and then falls (Fig. 5),
- decoding cost per block grows as O(s) (Sec. 2's complexity remark).

The script scores each candidate s and prints the recommended window.

Run:  python examples/segment_size_tuning.py
"""

from repro import CollectionSystem, Parameters, analyze

ARRIVAL_RATE = 20.0
GOSSIP_RATE = 10.0
DELETION_RATE = 1.0
CAPACITY = 8.0
CANDIDATES = (1, 2, 5, 10, 20, 30, 40, 50)
#: relative weight of a unit of delay vs a unit of lost throughput
DELAY_WEIGHT = 0.15
#: cost per unit of decode complexity (normalized to s=50)
COMPLEXITY_WEIGHT = 0.05


def main() -> None:
    print(
        f"lambda={ARRIVAL_RATE:g} mu={GOSSIP_RATE:g} gamma={DELETION_RATE:g} "
        f"c={CAPACITY:g} (capacity line c/lambda = {CAPACITY / ARRIVAL_RATE:.2f})"
    )
    print()
    print(
        f"{'s':>4s} {'throughput':>11s} {'delay':>8s} {'complexity':>11s} "
        f"{'score':>8s}   (analytical)"
    )
    print("-" * 52)

    best_s, best_score = None, -1e9
    scores = {}
    for s in CANDIDATES:
        point = analyze(ARRIVAL_RATE, GOSSIP_RATE, DELETION_RATE, s, CAPACITY)
        throughput = point.throughput.normalized_throughput
        delay = max(point.delay.block_delay, 0.0)
        complexity = s / max(CANDIDATES)
        score = (
            throughput / (CAPACITY / ARRIVAL_RATE)
            - DELAY_WEIGHT * delay
            - COMPLEXITY_WEIGHT * complexity
        )
        scores[s] = score
        if score > best_score:
            best_s, best_score = s, score
        print(
            f"{s:4d} {throughput:11.4f} {delay:8.4f} {complexity:11.2f} "
            f"{score:8.4f}"
        )

    print()
    good = [s for s in CANDIDATES if scores[s] > best_score - 0.02]
    print(
        f"recommended segment size: s = {best_s} "
        f"(within 0.02 of best: {good})"
    )

    # spot-check the recommendation against the event simulator
    params = Parameters(
        n_peers=150,
        arrival_rate=ARRIVAL_RATE,
        gossip_rate=GOSSIP_RATE,
        deletion_rate=DELETION_RATE,
        normalized_capacity=CAPACITY,
        segment_size=best_s,
        n_servers=4,
    )
    report = CollectionSystem(params, seed=11).run(warmup=12.0, duration=18.0)
    predicted = analyze(
        ARRIVAL_RATE, GOSSIP_RATE, DELETION_RATE, best_s, CAPACITY
    ).throughput.normalized_throughput
    print(
        f"simulation spot check at s={best_s}: throughput "
        f"{report.normalized_throughput:.4f} (analytic {predicted:.4f})"
    )
    print(
        "consistent with the paper: small s wastes server pulls on "
        "redundant blocks; very large s costs decode complexity for "
        "little extra throughput — the paper's preferred window is 20-40."
    )


if __name__ == "__main__":
    main()
