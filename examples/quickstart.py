#!/usr/bin/env python3
"""Quickstart: run an indirect collection session and read the results.

Simulates a session of 150 peers generating statistics blocks at rate
lambda = 12 per peer while logging servers with aggregate capacity
c*N = 0.5 * demand pull coded blocks out of the gossip-maintained buffer
pool, then prints the headline metrics next to what the paper's theorems
predict for the same parameters.

Run:  python examples/quickstart.py
"""

from repro import CollectionSystem, Parameters, analyze

PARAMS = Parameters(
    n_peers=150,
    arrival_rate=12.0,  # lambda: statistics blocks per peer per unit time
    gossip_rate=8.0,  # mu: coded-block uploads per peer per unit time
    deletion_rate=1.0,  # gamma: TTL expiry rate (mean block lifetime 1.0)
    normalized_capacity=6.0,  # c: server pull rate per peer (c*N aggregate)
    segment_size=16,  # s: blocks coded together per segment
    n_servers=4,
)


def main() -> None:
    print(f"configuration: {PARAMS.describe()}")
    print(f"capacity/demand ratio c/lambda = {PARAMS.capacity_ratio:.2f}")
    print()

    system = CollectionSystem(PARAMS, seed=7)
    report = system.run(warmup=12.0, duration=20.0)

    theory = analyze(
        PARAMS.arrival_rate,
        PARAMS.gossip_rate,
        PARAMS.deletion_rate,
        PARAMS.segment_size,
        PARAMS.normalized_capacity,
    )

    rows = [
        (
            "normalized session throughput",
            report.normalized_throughput,
            theory.throughput.normalized_throughput,
        ),
        (
            "collection efficiency eta",
            report.efficiency,
            theory.throughput.efficiency,
        ),
        (
            "buffer occupancy rho (blocks/peer)",
            report.mean_buffer_occupancy,
            theory.storage.occupancy,
        ),
        (
            "storage overhead (blocks/peer)",
            report.storage_overhead,
            theory.storage.overhead,
        ),
        (
            "block delivery delay",
            report.mean_block_delay,
            theory.delay.block_delay,
        ),
        (
            "data saved per peer (blocks)",
            report.saved_blocks_per_peer,
            theory.saved.saved_blocks_per_peer,
        ),
    ]
    print(f"{'metric':38s} {'simulated':>10s} {'theory':>10s}")
    print("-" * 60)
    for label, simulated, predicted in rows:
        sim_text = f"{simulated:10.4f}" if simulated is not None else "         -"
        print(f"{label:38s} {sim_text} {predicted:10.4f}")
    print()
    print(
        f"segments completed in window: {report.segments_completed}, "
        f"lost: {report.segments_lost}"
    )
    print(
        f"server pulls: {report.pulls} "
        f"({report.redundant_pulls} redundant, {report.idle_pulls} idle)"
    )
    print(
        "note: Theorem 1 bounds the storage overhead by mu/gamma = "
        f"{PARAMS.storage_overhead_bound:.1f} blocks/peer"
    )


if __name__ == "__main__":
    main()
