#!/usr/bin/env python3
"""Postmortem diagnosis: recovering the telemetry of departed peers.

Sec. 1's sharpest observation: "since peers tend to leave soon after the
quality degrades, such statistics from departed peers may be the most
useful to diagnose system outages."  This example runs the full-RLNC mode
with *real telemetry payloads*: every peer packs synthetic streaming-health
records (buffer level, loss, rebuffering flags) into coded blocks; churned
peers take their buffers with them; and at the end we decode whatever the
servers managed to collect and do the postmortem a network operator would:
inspect the records of peers that already left.

Run:  python examples/churn_postmortem.py
"""

import random

import numpy as np

from repro import Parameters, RecordCodec, StatsRecord
from repro.coding.block import SegmentDescriptor
from repro.core.system import CollectionSystem
from repro.stats.records import synthesize_records

SESSION_ID = 77
PAYLOAD_BYTES = 128  # one codec block per coded payload
PARAMS = Parameters(
    n_peers=40,
    arrival_rate=2.0,
    gossip_rate=8.0,
    deletion_rate=0.5,
    normalized_capacity=1.5,
    segment_size=4,
    n_servers=2,
    mean_lifetime=5.0,  # aggressive churn: mean lifetime 5 time units
    mode="rlnc",
    payload_bytes=PAYLOAD_BYTES,
)

codec = RecordCodec(block_size=PAYLOAD_BYTES)
records_rng = random.Random(99)

#: every telemetry record we handed to the collection system, keyed by
#: (slot, generation) so the postmortem can compare recovered vs generated
generated: dict = {}


def telemetry_provider(descriptor: SegmentDescriptor) -> np.ndarray:
    """Produce one segment's worth of telemetry for its source peer.

    Peers whose slot is divisible by 4 emit *degraded* telemetry (low
    buffer, high loss) — these are the peers most likely to quit, and whose
    records matter most.
    """
    degraded = descriptor.source_peer % 4 == 0
    rows = []
    source = (descriptor.source_peer, descriptor.generation)
    for index in range(descriptor.size):
        records = synthesize_records(
            records_rng,
            peer_id=descriptor.source_peer,
            session_id=SESSION_ID,
            count=codec.records_per_block,
            start_time=descriptor.injected_at + index,
            degraded=degraded,
        )
        generated.setdefault(source, []).extend(records)
        rows.append(codec.pack_block(records))
    return np.stack(rows)


def main() -> None:
    system = CollectionSystem(PARAMS, seed=5, payload_provider=telemetry_provider)
    system.run_until(30.0)

    # ---- decode everything the servers completed -------------------------
    recovered: dict = {}
    for descriptor, payload_rows in system.collected_data.values():
        source = (descriptor.source_peer, descriptor.generation)
        for row in payload_rows:
            recovered.setdefault(source, []).extend(codec.unpack_block(row))

    departed = {
        source
        for source in generated
        if source[1] < system.peers[source[0]].generation
    }
    print(
        f"session ran to t=30: {len(generated)} source generations emitted "
        f"telemetry, {len(departed)} of them have departed"
    )

    recovered_departed = [s for s in departed if recovered.get(s)]
    total_dep_records = sum(len(generated[s]) for s in departed)
    got_dep_records = sum(len(recovered.get(s, [])) for s in departed)
    print(
        f"departed-peer records recovered: {got_dep_records}/{total_dep_records} "
        f"({got_dep_records / max(total_dep_records, 1):.1%}) across "
        f"{len(recovered_departed)} departed generations"
    )

    # ---- the operator's question: why did peers leave? --------------------
    print()
    print("postmortem of departed peers with recovered telemetry:")
    print(f"{'peer':>5s} {'gen':>4s} {'records':>8s} {'avg buffer':>11s} "
          f"{'avg loss':>9s} {'rebuffering':>12s}")
    shown = 0
    for slot, gen in sorted(departed):
        records = recovered.get((slot, gen))
        if not records:
            continue
        avg_buffer = sum(r.buffer_level for r in records) / len(records)
        avg_loss = sum(r.loss_fraction for r in records) / len(records)
        rebuf = sum(1 for r in records if r.rebuffering)
        print(
            f"{slot:5d} {gen:4d} {len(records):8d} {avg_buffer:11.2f} "
            f"{avg_loss:9.3f} {rebuf:7d}/{len(records)}"
        )
        shown += 1
        if shown >= 10:
            break

    degraded_sources = [s for s in recovered if s[0] % 4 == 0]
    healthy_sources = [s for s in recovered if s[0] % 4 != 0]

    def mean_loss(sources) -> float:
        records = [r for s in sources for r in recovered[s]]
        if not records:
            return float("nan")
        return sum(r.loss_fraction for r in records) / len(records)

    print()
    print(
        "diagnosis from recovered records: peers in the degraded group "
        f"(slot % 4 == 0) show loss {mean_loss(degraded_sources):.3f} vs "
        f"{mean_loss(healthy_sources):.3f} for the rest — the outage "
        "signature survives even though many of those peers are gone."
    )
    sanity = all(
        isinstance(r, StatsRecord) and r.session_id == SESSION_ID
        for rs in recovered.values()
        for r in rs
    )
    print(f"record integrity check (ids, session): {'OK' if sanity else 'FAILED'}")


if __name__ == "__main__":
    main()
