#!/usr/bin/env python3
"""Tracing a segment's life through the collection pipeline.

Attaches a :class:`repro.sim.Tracer` to a small churned session and prints
the complete life of a few segments — injection, gossip spread, TTL decay,
server pulls, completion or loss — followed by the aggregate event census.
Useful both as a debugging recipe and as a concrete picture of the
"buffering zone" at the level of individual blocks.

Run:  python examples/trace_segment_life.py
"""

from collections import Counter

from repro import CollectionSystem, Parameters
from repro.sim.trace import KIND_COMPLETE, KIND_LOST, Tracer

PARAMS = Parameters(
    n_peers=40,
    arrival_rate=3.0,
    gossip_rate=6.0,
    deletion_rate=0.8,
    normalized_capacity=2.0,
    segment_size=5,
    n_servers=2,
    mean_lifetime=8.0,
)


def describe(event) -> str:
    extras = ""
    if event.detail:
        extras = "  " + ", ".join(
            f"{key}={value:g}" for key, value in sorted(event.detail.items())
        )
    peer = f" peer={event.peer}" if event.peer is not None else ""
    return f"  t={event.time:7.3f}  {event.kind:<8s}{peer}{extras}"


def main() -> None:
    tracer = Tracer()
    system = CollectionSystem(PARAMS, seed=21, tracer=tracer)
    system.run_until(12.0)

    print(f"configuration: {PARAMS.describe()}")
    print(f"traced {len(tracer)} events: {tracer.summary()}")
    print()

    completed = tracer.of_kind(KIND_COMPLETE)
    lost = tracer.of_kind(KIND_LOST)

    if completed:
        segment_id = completed[0].segment
        print(f"life of segment {segment_id} (completed):")
        for event in tracer.for_segment(segment_id):
            print(describe(event))
        print()

    if lost:
        segment_id = lost[-1].segment
        print(f"life of segment {segment_id} (lost before collection):")
        for event in tracer.for_segment(segment_id):
            print(describe(event))
        print()

    # how long do segments spread before the servers finish them?
    spread = Counter()
    for event in completed:
        gossip_hops = sum(
            1
            for e in tracer.for_segment(event.segment)
            if e.kind == "gossip" and e.time <= event.time
        )
        spread[min(gossip_hops, 10)] += 1
    if spread:
        print("gossip transfers before completion (capped at 10):")
        for hops in sorted(spread):
            bar = "#" * spread[hops]
            print(f"  {hops:>3d}: {bar}")

    print()
    outcome_total = len(completed) + len(lost)
    if outcome_total:
        print(
            f"outcomes so far: {len(completed)} completed, {len(lost)} lost "
            f"({len(completed) / outcome_total:.0%} of resolved segments "
            "reached the servers)"
        )


if __name__ == "__main__":
    main()
