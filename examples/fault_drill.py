#!/usr/bin/env python3
"""Fault drill: lossy links plus a scheduled server outage, end to end.

The paper's collection architecture is valuable precisely when conditions
are bad — indirect collection exists because the direct path to the server
fails peers at scale.  This drill subjects one session to the two faults a
deployment meets first (dropped transfers and a server maintenance window)
and reads the degradation off the standard report: how much delivery is
lost, how long the servers were dark, and how the catch-up burst claws
back the backlog after recovery.

Run:  python examples/fault_drill.py
"""

from repro import Parameters
from repro.core.system import CollectionSystem
from repro.faults import FaultPlan

WARMUP = 3.0
DURATION = 12.0
#: servers go dark for a 2.5-time-unit maintenance window mid-measurement
OUTAGE = (6.0, 8.5)
PARAMS = Parameters(
    n_peers=120,
    arrival_rate=6.0,
    gossip_rate=10.0,
    deletion_rate=1.0,
    normalized_capacity=3.0,
    segment_size=6,
    n_servers=3,
)
PLAN = FaultPlan(
    gossip_loss_rate=0.15,
    pull_loss_rate=0.15,
    outage_windows=(OUTAGE,),
    catchup_limit=6,
)


def run(plan):
    params = PARAMS if plan is None else PARAMS.with_changes(faults=plan)
    system = CollectionSystem(params, seed=11)
    report = system.run(WARMUP, DURATION)
    return system, report


def main() -> None:
    print(f"fault drill: {PLAN.describe()}")
    print(f"measurement window [{WARMUP:g}, {WARMUP + DURATION:g}], "
          f"outage window [{OUTAGE[0]:g}, {OUTAGE[1]:g}]\n")

    _, clean = run(None)
    faulty_system, faulty = run(PLAN)

    rows = [
        ("normalized goodput", clean.normalized_goodput,
         faulty.normalized_goodput),
        ("collection efficiency", clean.efficiency, faulty.efficiency),
        ("segments completed", clean.segments_completed,
         faulty.segments_completed),
        ("mean block delay", clean.mean_block_delay or float("nan"),
         faulty.mean_block_delay or float("nan")),
    ]
    print(f"{'metric':24s} {'fault-free':>12s} {'faulted':>12s} {'ratio':>8s}")
    for name, base, hit in rows:
        ratio = hit / base if base else float("nan")
        print(f"{name:24s} {base:12.4f} {hit:12.4f} {ratio:8.2f}")

    print()
    print(f"transfers dropped in flight : {faulty.transfers_dropped}")
    print(f"server downtime in window   : {faulty.outage_time:.2f} "
          f"(scheduled {OUTAGE[1] - OUTAGE[0]:.2f})")
    survived = (faulty.normalized_goodput / clean.normalized_goodput
                if clean.normalized_goodput else float("nan"))
    print(
        f"\ndelivery survived at {survived:.0%} of the fault-free level: "
        "gossip keeps replicating through the outage, so the backlog the "
        "servers face at recovery is mostly still alive in peer buffers."
    )
    assert faulty_system.faults is not None
    faulty_system.consistency_check()
    print("consistency check: OK")


if __name__ == "__main__":
    main()
