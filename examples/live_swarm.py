#!/usr/bin/env python3
"""Live deployment: run the collection protocol over real TCP sockets.

Everything else in ``examples/`` drives the event simulator.  This one
deploys the *same* protocol — same ``Parameters``, same GF(256) coding
kernels — as a swarm of real asyncio peers on loopback TCP: every peer
binds a listener, gossips recoded blocks over sockets, and the logging
servers pull, decode, and verify each completed segment's payload digest
end to end.  Then the event simulator runs the identical configuration
and the two reports are cross-validated metric by metric, which is the
shrunk-down version of the E-LIVE experiment (``repro run live``).

Run:  python examples/live_swarm.py
"""

import asyncio

from repro import Parameters
from repro.experiments.base import simulate_cell
from repro.live import compare_reports, run_swarm
from repro.live.crossval import DEFAULT_TOLERANCES

PARAMS = Parameters(
    n_peers=64,
    arrival_rate=0.25,  # lambda: injected blocks per peer per sim unit
    gossip_rate=1.0,  # mu: gossip transmissions per peer per sim unit
    deletion_rate=0.25,  # gamma: per-block TTL expiry rate
    normalized_capacity=1.0,  # c: aggregate pull rate c*N over n_servers
    segment_size=2,
    n_servers=4,
    mode="rlnc",  # real coefficients: the live runtime moves real bytes
    payload_bytes=64,
)
SEED = 7
WARMUP = 6.0  # sim units before the measurement window opens
DURATION = 12.0  # measured sim units
TIME_SCALE = 2.0  # sim units per wall-clock second (live side)
SIM_WINDOW = (20.0, 60.0)  # the simulator twin's (warmup, duration)


def main() -> None:
    print(f"configuration: {PARAMS.describe()}")
    wall = (WARMUP + DURATION) / TIME_SCALE
    print(
        f"deploying {PARAMS.n_peers} TCP peers on loopback "
        f"(~{wall:.0f}s of wall clock at time_scale={TIME_SCALE:g})"
    )
    print()

    live = asyncio.run(
        run_swarm(PARAMS, SEED, warmup=WARMUP, duration=DURATION,
                  time_scale=TIME_SCALE)
    )
    print(
        f"live swarm: {live['segments_completed']} segments collected, "
        f"{live['hash_verified']} decoded payloads hash-verified, "
        f"{live['hash_failures']} failures, "
        f"{live['control_frames']} control frames"
    )

    sim = simulate_cell(
        PARAMS, SIM_WINDOW[0], SIM_WINDOW[1],
        tuple(DEFAULT_TOLERANCES), SEED,
    )
    report = compare_reports(
        sim, {metric: live.get(metric) for metric in DEFAULT_TOLERANCES}
    )
    print()
    print(f"{'metric':<24} {'sim':>10} {'live':>10} {'dev':>8}  verdict")
    for c in report.comparisons:
        def fmt(value):
            return "-" if value is None else f"{value:.4f}"

        dev = "-" if c.deviation is None else f"{c.deviation:.1%}"
        verdict = "ok" if c.within else f"OUT OF BAND (tol {c.tolerance:.0%})"
        print(
            f"{c.metric:<24} {fmt(c.sim_value):>10} "
            f"{fmt(c.live_value):>10} {dev:>8}  {verdict}"
        )
    print()
    print(
        "cross-validation "
        + ("AGREES" if report.agrees else "DISAGREES")
        + " within the E-LIVE tolerance bands"
    )


if __name__ == "__main__":
    main()
