"""Setup shim for legacy editable installs (offline environments without
the `wheel` package cannot run PEP 660 builds; `pip install -e .
--no-use-pep517 --no-build-isolation` uses this instead)."""

from setuptools import setup

setup()
