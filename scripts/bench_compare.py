#!/usr/bin/env python
"""Compare two pytest-benchmark JSON files and flag regressions/speedups.

The perf-regression harness: every benchmark run writes a pytest-benchmark
JSON (``--benchmark-json=...``), and this script diffs it against the
committed baseline so perf changes are explicit instead of silent.

Usage::

    # regression gate (hard-fail on >25% slowdown vs the baseline)
    python scripts/bench_compare.py BENCH_baseline.json bench-now.json \
        --tolerance 25%

    # CI smoke mode: report, but exit 0 on regressions (hardware noise)
    python scripts/bench_compare.py BENCH_baseline.json bench-now.json \
        --tolerance 25% --warn-only

    # speedup proof (e.g. this PR's >=2x acceptance criterion)
    python scripts/bench_compare.py BENCH_seed.json BENCH_baseline.json \
        --min-speedup 2.0 --only gf256_axpy incremental_decode event_engine

Exit codes: 0 ok, 1 regression (or unmet --min-speedup), 2 usage error.

Benchmarks are matched by name; names present in only one file are listed
but never fail the comparison (new benchmarks must be addable without
rewriting history).  The compared statistic defaults to the median, the
most noise-robust of pytest-benchmark's aggregates.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence


class UsageError(Exception):
    """Bad input (unreadable JSON, unknown stat): exit code 2, not 1."""


def load_stats(path: Path, stat: str) -> Dict[str, float]:
    """Map benchmark name -> chosen statistic (seconds) from one JSON file."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise UsageError(f"cannot read benchmark JSON {path}: {exc}")
    out: Dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        stats = bench.get("stats", {})
        if stat not in stats:
            raise UsageError(
                f"{path}: benchmark {bench.get('name')!r} has no "
                f"statistic {stat!r}"
            )
        out[str(bench["name"])] = float(stats[stat])
    if not out:
        raise UsageError(f"{path} contains no benchmarks")
    return out


def parse_tolerance(text: str) -> float:
    """'25%' or '25' -> 0.25 (allowed fractional slowdown)."""
    value = float(text.rstrip("%"))
    if value < 0:
        raise argparse.ArgumentTypeError("tolerance must be >= 0")
    return value / 100.0


def _format_seconds(seconds: float) -> str:
    for unit, scale in (("s", 1.0), ("ms", 1e-3), ("us", 1e-6)):
        if seconds >= scale:
            return f"{seconds / scale:.2f}{unit}"
    return f"{seconds / 1e-9:.0f}ns"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("baseline", type=Path, help="reference benchmark JSON")
    parser.add_argument("current", type=Path, help="benchmark JSON to judge")
    parser.add_argument(
        "--stat",
        default="median",
        choices=["min", "max", "mean", "median"],
        help="statistic to compare (default: median)",
    )
    parser.add_argument(
        "--tolerance",
        type=parse_tolerance,
        default=parse_tolerance("10%"),
        metavar="PCT",
        help="allowed slowdown before a benchmark counts as a regression "
        "(e.g. '25%%'; default 10%%)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="require every compared benchmark to be at least X times "
        "faster than the baseline (speedup-proof mode)",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        default=None,
        metavar="SUBSTR",
        help="restrict the comparison to benchmarks whose name contains "
        "any of these substrings",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (CI smoke mode on noisy hosts)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_stats(args.baseline, args.stat)
        current = load_stats(args.current, args.stat)
    except UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    names = sorted(set(baseline) & set(current))
    if args.only:
        names = [n for n in names if any(sub in n for sub in args.only)]
    if not names:
        print("error: no benchmarks in common to compare", file=sys.stderr)
        return 2

    regressions: List[str] = []
    too_slow: List[str] = []
    width = max(len(name) for name in names)
    print(
        f"comparing {args.stat} of {len(names)} benchmark(s): "
        f"{args.baseline} -> {args.current}"
    )
    for name in names:
        ref = baseline[name]
        now = current[name]
        speedup = ref / now if now > 0 else float("inf")
        verdict = "ok"
        if now > ref * (1.0 + args.tolerance):
            verdict = f"REGRESSION (+{(now / ref - 1.0) * 100.0:.0f}%)"
            regressions.append(name)
        elif speedup >= 1.05:
            verdict = f"{speedup:.2f}x faster"
        if args.min_speedup is not None and speedup < args.min_speedup:
            verdict += f"  [below required {args.min_speedup:g}x]"
            too_slow.append(name)
        print(
            f"  {name:<{width}}  {_format_seconds(ref):>9} -> "
            f"{_format_seconds(now):>9}  {verdict}"
        )

    for name in sorted(set(baseline) - set(current)):
        print(f"  note: {name} only in baseline")
    for name in sorted(set(current) - set(baseline)):
        print(f"  note: {name} only in current (new benchmark)")

    failed = bool(too_slow) or (bool(regressions) and not args.warn_only)
    if regressions and args.warn_only:
        print("warn-only mode: regressions reported but not fatal")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
