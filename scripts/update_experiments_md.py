#!/usr/bin/env python3
"""Inject benchmark tables into EXPERIMENTS.md.

Reads the console log of a benchmark run (``REPRO_BENCH_QUALITY=full pytest
benchmarks/ --benchmark-only -s | tee bench_full_output.txt``), extracts
each experiment's printed table, and substitutes it into the matching
``<!-- NAME_TABLE -->`` placeholder of EXPERIMENTS.md (or refreshes a
previously injected block).

Usage:  python scripts/update_experiments_md.py [log_path] [experiments_md]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: placeholder -> regex matching the table's title line in the log
TABLE_TITLES = {
    "FIG3_TABLE": r"^Fig\. 3 —",
    "FIG4_TABLE": r"^Fig\. 4 —",
    "FIG5_TABLE": r"^Fig\. 5 —",
    "FIG6_TABLE": r"^Fig\. 6 —",
    "T1_TABLE": r"^Theorem 1 —",
    "BASELINE_TABLE": r"^Fig\. 1\(a\) vs 1\(b\) —",
    "TRANSIENT_TABLE": r"^Flash crowd at the fluid limit",
    "ABL_TTL_TABLE": r"^Ablation — TTL rate",
    "ABL_BUF_TABLE": r"^Ablation — buffer cap",
    "ABL_SELECT_TABLE": r"^Ablation — segment selection",
    "ABL_SCHED_TABLE": r"^Ablation — server pull scheduling",
    "ABL_CODE_TABLE": r"^Ablation — abstract innovation",
    "ABL_TOPO_TABLE": r"^Ablation — overlay degree",
    "ROBUST_TABLE": r"^Robustness — fault injection",
}


def extract_table(log_lines: list, title_pattern: str) -> str:
    """Return the table starting at the title line, through its notes."""
    title_re = re.compile(title_pattern)
    start = None
    for index, line in enumerate(log_lines):
        if title_re.search(line):
            start = index
            break
    if start is None:
        return ""
    block = []
    for line in log_lines[start:]:
        stripped = line.rstrip("\n")
        # A table ends at the first line that is neither table content
        # (rule, header/data rows, which are indented or numeric) nor a note.
        is_content = (
            stripped.startswith("note:")
            or stripped.startswith("=")
            or stripped.startswith("-")
            or (stripped and stripped[0].isspace())
            or any(ch.isdigit() for ch in stripped[:20])
        )
        if block and stripped and not is_content:
            break
        if not stripped and len(block) > 3:
            break
        block.append(stripped)
    return "\n".join(block).rstrip()


def inject(markdown: str, name: str, table: str) -> str:
    """Replace the placeholder (or an earlier injected block) for *name*."""
    placeholder = f"<!-- {name} -->"
    fenced = f"{placeholder}\n```\n{table}\n```"
    # refresh an existing injected block
    pattern = re.compile(
        re.escape(placeholder) + r"\n```\n.*?\n```", re.DOTALL
    )
    if pattern.search(markdown):
        return pattern.sub(fenced, markdown)
    if placeholder in markdown:
        return markdown.replace(placeholder, fenced)
    return markdown


def main(argv: list) -> int:
    log_path = Path(argv[1]) if len(argv) > 1 else Path("bench_full_output.txt")
    md_path = Path(argv[2]) if len(argv) > 2 else Path("EXPERIMENTS.md")
    log_lines = log_path.read_text().splitlines()
    markdown = md_path.read_text()
    missing = []
    for name, title_pattern in TABLE_TITLES.items():
        table = extract_table(log_lines, title_pattern)
        if not table:
            missing.append(name)
            continue
        markdown = inject(markdown, name, table)
    md_path.write_text(markdown)
    injected = len(TABLE_TITLES) - len(missing)
    print(f"injected {injected} tables into {md_path}")
    if missing:
        print(f"not found in {log_path}: {', '.join(missing)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
