#!/usr/bin/env python3
"""Inject benchmark tables into EXPERIMENTS.md.

Two input modes, selected by what the first argument points at:

- **console log** (legacy): the output of a benchmark run
  (``REPRO_BENCH_QUALITY=full pytest benchmarks/ --benchmark-only -s |
  tee bench_full_output.txt``);
- **directory** of archived series JSON: either the legacy flat
  ``results/`` layout (``results/fig3.json`` ...), a single runner run
  directory (``runs/fig5-001/`` containing ``result.json``), or a parent
  ``runs/`` directory (every child run's ``result.json`` is collected;
  the newest run wins when an experiment appears more than once).  The
  tables are re-rendered from the JSON through ``SeriesResult.to_table``,
  so both execution paths keep feeding the same doc.

Each experiment's table is substituted into the matching
``<!-- NAME_TABLE -->`` placeholder of EXPERIMENTS.md (or refreshes a
previously injected block).

Usage:  python scripts/update_experiments_md.py [log_or_dir] [experiments_md]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List

#: placeholder -> regex matching the table's title line in the log
TABLE_TITLES = {
    "FIG3_TABLE": r"^Fig\. 3 —",
    "FIG4_TABLE": r"^Fig\. 4 —",
    "FIG5_TABLE": r"^Fig\. 5 —",
    "FIG6_TABLE": r"^Fig\. 6 —",
    "T1_TABLE": r"^Theorem 1 —",
    "BASELINE_TABLE": r"^Fig\. 1\(a\) vs 1\(b\) —",
    "TRANSIENT_TABLE": r"^Flash crowd at the fluid limit",
    "ABL_TTL_TABLE": r"^Ablation — TTL rate",
    "ABL_BUF_TABLE": r"^Ablation — buffer cap",
    "ABL_SELECT_TABLE": r"^Ablation — segment selection",
    "ABL_SCHED_TABLE": r"^Ablation — server pull scheduling",
    "ABL_CODE_TABLE": r"^Ablation — abstract innovation",
    "ABL_TOPO_TABLE": r"^Ablation — overlay degree",
    "ROBUST_TABLE": r"^Robustness — fault injection",
    "ADVERSARY_TABLE": r"^Adversary — Byzantine strategies",
    "SCALE_TABLE": r"^E-SCALE —",
    "LIVE_TABLE": r"^E-LIVE —",
    "LIVE_CHAOS_TABLE": r"^E-LIVE-CHAOS —",
}


def extract_table(log_lines: list, title_pattern: str) -> str:
    """Return the table starting at the title line, through its notes."""
    title_re = re.compile(title_pattern)
    start = None
    for index, line in enumerate(log_lines):
        if title_re.search(line):
            start = index
            break
    if start is None:
        return ""
    block = []
    for line in log_lines[start:]:
        stripped = line.rstrip("\n")
        # A table ends at the first line that is neither table content
        # (rule, header/data rows, which are indented or numeric) nor a note.
        is_content = (
            stripped.startswith("note:")
            or stripped.startswith("=")
            or stripped.startswith("-")
            or (stripped and stripped[0].isspace())
            or any(ch.isdigit() for ch in stripped[:20])
        )
        if block and stripped and not is_content:
            break
        if not stripped and len(block) > 3:
            break
        block.append(stripped)
    return "\n".join(block).rstrip()


def _result_files(root: Path) -> List[Path]:
    """Series-JSON files under *root*, newest-run-last so later wins.

    Recognizes, in order: a single run directory (``result.json``
    present), a parent of run directories (children with
    ``manifest.json``), and the legacy flat ``results/*.json`` layout.
    """
    if (root / "result.json").is_file():
        return [root / "result.json"]
    run_results = sorted(
        child / "result.json"
        for child in root.iterdir()
        if child.is_dir() and (child / "manifest.json").is_file()
        and (child / "result.json").is_file()
    )
    if run_results:
        return run_results
    return sorted(path for path in root.glob("*.json") if path.is_file())


def render_directory(root: Path) -> List[str]:
    """Re-render every archived series under *root* as console lines."""
    repo_src = Path(__file__).resolve().parents[1] / "src"
    if repo_src.is_dir() and str(repo_src) not in sys.path:
        sys.path.insert(0, str(repo_src))
    from repro.experiments import SeriesResult

    tables: Dict[str, str] = {}
    for path in _result_files(root):
        try:
            result = SeriesResult.from_json(path.read_text())
        except (ValueError, KeyError) as exc:
            print(f"skipping {path}: {exc}", file=sys.stderr)
            continue
        tables[result.name] = result.to_table()
    lines: List[str] = []
    for table in tables.values():
        lines.extend(table.splitlines())
        lines.append("")
    return lines


def inject(markdown: str, name: str, table: str) -> str:
    """Replace the placeholder (or an earlier injected block) for *name*."""
    placeholder = f"<!-- {name} -->"
    fenced = f"{placeholder}\n```\n{table}\n```"
    # refresh an existing injected block
    pattern = re.compile(
        re.escape(placeholder) + r"\n```\n.*?\n```", re.DOTALL
    )
    if pattern.search(markdown):
        return pattern.sub(fenced, markdown)
    if placeholder in markdown:
        return markdown.replace(placeholder, fenced)
    return markdown


def main(argv: list) -> int:
    source = Path(argv[1]) if len(argv) > 1 else Path("bench_full_output.txt")
    md_path = Path(argv[2]) if len(argv) > 2 else Path("EXPERIMENTS.md")
    if source.is_dir():
        log_lines = render_directory(source)
    else:
        log_lines = source.read_text().splitlines()
    markdown = md_path.read_text()
    missing = []
    for name, title_pattern in TABLE_TITLES.items():
        table = extract_table(log_lines, title_pattern)
        if not table:
            missing.append(name)
            continue
        markdown = inject(markdown, name, table)
    md_path.write_text(markdown)
    injected = len(TABLE_TITLES) - len(missing)
    print(f"injected {injected} tables into {md_path}")
    if missing:
        print(f"not found in {source}: {', '.join(missing)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
